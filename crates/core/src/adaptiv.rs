//! The AdaptivFloat format and its quantization algorithm (Algorithm 1 of
//! the paper).
//!
//! An `AdaptivFloat<n, e>` word has one sign bit, `e` exponent bits and
//! `m = n − e − 1` mantissa bits. Unlike IEEE 754:
//!
//! * **no denormals** are ever produced or decoded, which keeps the
//!   hardware datapath lean (a single implied-one normalizer);
//! * the all-zero exponent+mantissa pattern, which would otherwise encode
//!   the minimum-magnitude value `2^exp_bias`, is **reassigned to ±0** —
//!   zero is essential to DNN computation (Figure 2 of the paper);
//! * a small signed integer **exponent bias** shifts the whole exponent
//!   range per tensor so the representable span hugs the data
//!   (`exp_bias = exp_max − (2^e − 1)` with
//!   `2^exp_max ≤ max|W| < 2^(exp_max+1)`).

use crate::decode::{DecodePolicy, DecodeStats};
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::pack::PackedCodes;
use crate::util::{exp2, floor_log2};

/// The AdaptivFloat `<n, e>` format descriptor.
///
/// # Examples
///
/// ```
/// use adaptivfloat::AdaptivFloat;
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let fmt = AdaptivFloat::new(4, 2)?;
/// assert_eq!(fmt.mantissa_bits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaptivFloat {
    n: u32,
    e: u32,
}

/// Per-tensor quantization parameters: the format geometry plus the
/// exponent bias derived from the tensor's maximum absolute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaptivParams {
    /// Total word size in bits.
    pub n: u32,
    /// Exponent field width in bits.
    pub e: u32,
    /// The per-tensor exponent bias (typically a small negative integer).
    pub exp_bias: i32,
}

impl AdaptivParams {
    /// Number of mantissa bits, `n − e − 1`.
    pub fn mantissa_bits(&self) -> u32 {
        self.n - self.e - 1
    }

    /// The largest exponent value reachable: `exp_bias + 2^e − 1`.
    pub fn exp_max(&self) -> i32 {
        // Shift in u64: `1i32 << 31` would overflow for e = 31 (n = 32).
        self.exp_bias + ((1u64 << self.e) - 1) as i32
    }

    /// Minimum representable non-zero magnitude,
    /// `2^exp_bias · (1 + 2^−m)` — the slot *after* the one sacrificed
    /// for zero.
    pub fn value_min(&self) -> f64 {
        let m = self.mantissa_bits();
        exp2(self.exp_bias) * (1.0 + exp2(-(m as i32)))
    }

    /// Maximum representable magnitude, `2^exp_max · (2 − 2^−m)`.
    pub fn value_max(&self) -> f64 {
        let m = self.mantissa_bits();
        exp2(self.exp_max()) * (2.0 - exp2(-(m as i32)))
    }
}

impl AdaptivFloat {
    /// Create an `AdaptivFloat<n, e>` format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] unless `1 ≤ e ≤ n − 1`
    /// (at least a sign bit and the exponent field must fit; `m = 0` is
    /// allowed — the mantissa is then the implied one alone) and `n ≤ 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use adaptivfloat::AdaptivFloat;
    ///
    /// assert!(AdaptivFloat::new(8, 3).is_ok());
    /// assert!(AdaptivFloat::new(4, 4).is_err()); // no room for the sign bit
    /// ```
    pub fn new(n: u32, e: u32) -> Result<Self, FormatError> {
        if !(2..=32).contains(&n) {
            return Err(FormatError::InvalidBits {
                n,
                e,
                reason: "word size must be between 2 and 32 bits",
            });
        }
        if e == 0 || e > n - 1 {
            return Err(FormatError::InvalidBits {
                n,
                e,
                reason: "need 1 <= e <= n - 1 (sign bit plus exponent field)",
            });
        }
        Ok(AdaptivFloat { n, e })
    }

    /// Word size in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Exponent field width in bits.
    pub fn e(&self) -> u32 {
        self.e
    }

    /// Mantissa field width in bits, `n − e − 1`.
    pub fn mantissa_bits(&self) -> u32 {
        self.n - self.e - 1
    }

    /// Derive the per-tensor parameters from the data (Algorithm 1, step 1):
    /// find `exp_max` with `2^exp_max ≤ max|W| < 2^(exp_max+1)` and set
    /// `exp_bias = exp_max − (2^e − 1)`.
    ///
    /// An empty or all-zero tensor yields a conventional default of
    /// `exp_bias = −(2^e − 1)` (so `exp_max = 0`); every element quantizes
    /// to zero regardless. Non-finite elements are ignored when searching
    /// for the maximum.
    pub fn params_for(&self, data: &[f32]) -> AdaptivParams {
        let max_abs = data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        let exp_max = if max_abs == 0.0 {
            0
        } else {
            floor_log2(max_abs as f64)
        };
        self.params_with_exp_max(exp_max)
    }

    /// Build parameters directly from a chosen `exp_max` (the exponent of
    /// the largest magnitude the format should reach).
    pub fn params_with_exp_max(&self, exp_max: i32) -> AdaptivParams {
        AdaptivParams {
            n: self.n,
            e: self.e,
            // Shift in u64: `1i32 << 31` would overflow for e = 31.
            exp_bias: exp_max - ((1u64 << self.e) - 1) as i32,
        }
    }

    /// Build parameters from an explicit exponent bias (e.g. one recovered
    /// from a hardware register).
    pub fn params_with_bias(&self, exp_bias: i32) -> AdaptivParams {
        AdaptivParams {
            n: self.n,
            e: self.e,
            exp_bias,
        }
    }

    /// Quantize a single value under fixed parameters (Algorithm 1, steps
    /// 2–4): sub-minimum magnitudes round to 0 or `value_min` at the
    /// halfway threshold, super-maximum magnitudes clamp to `value_max`,
    /// everything else rounds the normalized mantissa at scale `2^−m`
    /// (with carry into the exponent when the mantissa rounds up to 2).
    ///
    /// NaN maps to `0.0`; ±∞ saturates to `±value_max`.
    pub fn quantize_with(&self, params: &AdaptivParams, v: f32) -> f32 {
        debug_assert_eq!((params.n, params.e), (self.n, self.e));
        let sign = if v.is_sign_negative() { -1.0f64 } else { 1.0 };
        if v.is_nan() {
            return 0.0;
        }
        let a = v.abs() as f64;
        if a == 0.0 {
            return 0.0;
        }
        let vmin = params.value_min();
        let vmax = params.value_max();
        if a.is_infinite() || a >= vmax {
            return (sign * vmax) as f32;
        }
        if a < vmin {
            return if a < vmin * 0.5 {
                0.0
            } else {
                (sign * vmin) as f32
            };
        }
        let m = params.mantissa_bits();
        let mut exp = floor_log2(a);
        let mant = a / exp2(exp); // in [1, 2)
        let scale = exp2(m as i32);
        let mut q = (mant * scale).round() / scale;
        if q >= 2.0 {
            exp += 1;
            q = 1.0;
        }
        if exp > params.exp_max() {
            return (sign * vmax) as f32;
        }
        (sign * exp2(exp) * q) as f32
    }

    /// Quantize a slice under fixed parameters, using the bit-twiddled
    /// fast kernel when the grid fits the normal-f32 envelope (all paper
    /// configurations do) and the f64 reference otherwise. Bit-identical
    /// to mapping [`quantize_with`](Self::quantize_with).
    pub fn quantize_slice_with_params(&self, params: &AdaptivParams, data: &[f32]) -> Vec<f32> {
        match crate::kernels::FastQuantizer::new(self, params) {
            Some(fast) => {
                let mut out = vec![0.0f32; data.len()];
                crate::par::par_zip_into(data, &mut out, |src, dst| fast.quantize_into(src, dst));
                out
            }
            None => crate::par::par_map_slice(data, |v| self.quantize_with(params, v)),
        }
    }

    /// Quantize a whole slice through the scalar f64 reference path
    /// ([`params_for`](Self::params_for) + [`quantize_with`](Self::quantize_with)),
    /// bypassing the fast kernel. This is the oracle the property tests
    /// check the bit-twiddled path against; production callers should use
    /// [`NumberFormat::quantize_slice`].
    pub fn quantize_slice_reference(&self, data: &[f32]) -> Vec<f32> {
        let params = self.params_for(data);
        data.iter()
            .map(|&v| self.quantize_with(&params, v))
            .collect()
    }

    /// Encode a value to its `n`-bit pattern under fixed parameters.
    /// The value is quantized first, so any finite `f32` is accepted.
    ///
    /// Bit layout (MSB to LSB): sign, exponent field, mantissa field.
    /// The all-zero exponent+mantissa pattern is ±0.
    pub fn encode_with(&self, params: &AdaptivParams, v: f32) -> u32 {
        let q = self.quantize_with(params, v);
        let m = params.mantissa_bits();
        let sign_bit = u32::from(q.is_sign_negative() && q != 0.0);
        if q == 0.0 {
            return sign_bit << (self.n - 1);
        }
        let a = q.abs() as f64;
        let exp = floor_log2(a);
        let mant = a / exp2(exp); // in [1, 2)
        let exp_field = (exp - params.exp_bias) as u32;
        let mant_field = ((mant - 1.0) * exp2(m as i32)).round() as u32;
        debug_assert!(exp_field < (1 << self.e));
        debug_assert!(mant_field < (1 << m.max(1)) || m == 0);
        (sign_bit << (self.n - 1)) | (exp_field << m) | mant_field
    }

    /// Decode an `n`-bit pattern back to its value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `bits` has set bits above the word width.
    pub fn decode_with(&self, params: &AdaptivParams, bits: u32) -> f32 {
        debug_assert!(self.n == 32 || bits < (1u32 << self.n));
        let m = params.mantissa_bits();
        let sign_bit = (bits >> (self.n - 1)) & 1;
        let exp_field = (bits >> m) & ((1 << self.e) - 1);
        // m = 0 is fine: (1 << 0) - 1 = 0 masks the (absent) field away.
        let mant_field = bits & ((1u32 << m) - 1);
        if exp_field == 0 && mant_field == 0 {
            return 0.0;
        }
        let sign = if sign_bit == 1 { -1.0f64 } else { 1.0 };
        let exp = params.exp_bias + exp_field as i32;
        let mant = 1.0 + mant_field as f64 / exp2(m as i32);
        (sign * exp2(exp) * mant) as f32
    }

    /// Decode an `n`-bit pattern under a [`DecodePolicy`].
    ///
    /// Unlike [`decode_with`](Self::decode_with) this accepts arbitrary
    /// `u32` patterns (bits above the word width are masked off, as a
    /// hardware decoder's field extraction would) and, under
    /// [`DecodePolicy::Harden`], repairs decodes that leave the format's
    /// representable envelope — which a valid `(params, code)` pair never
    /// does, but a corrupted `exp_bias` register can (pushing `2^exp`
    /// past f32 infinity). Every decode and repair is counted in
    /// `stats`.
    pub fn decode_with_policy(
        &self,
        params: &AdaptivParams,
        bits: u32,
        policy: DecodePolicy,
        stats: &mut DecodeStats,
    ) -> f32 {
        let mask = if self.n == 32 {
            u32::MAX
        } else {
            (1u32 << self.n) - 1
        };
        let v = self.decode_with(params, bits & mask);
        stats.guard(policy, params.value_max() as f32, v)
    }

    /// Quantize a whole tensor: derive parameters, then quantize each
    /// element (this is exactly Algorithm 1 of the paper).
    pub fn quantize_tensor(&self, data: &[f32]) -> QuantizedTensor {
        let params = self.params_for(data);
        let mut packer = PackedCodes::new(self.n);
        for &v in data {
            packer.push(self.encode_with(&params, v) as u64);
        }
        QuantizedTensor {
            format: *self,
            params,
            codes: packer,
        }
    }

    /// Enumerate every representable value under `params`, sorted
    /// ascending. Contains exactly `2^n − 1` distinct values: the
    /// positive/negative grids plus a single 0 (±0 collapse).
    pub fn representable_values(&self, params: &AdaptivParams) -> Vec<f32> {
        let m = params.mantissa_bits();
        let mut vals = vec![0.0f32];
        for exp_field in 0..(1u32 << self.e) {
            for mant_field in 0..(1u32 << m) {
                if exp_field == 0 && mant_field == 0 {
                    continue; // the slot sacrificed for zero
                }
                let exp = params.exp_bias + exp_field as i32;
                let mant = 1.0 + mant_field as f64 / exp2(m as i32);
                let v = (exp2(exp) * mant) as f32;
                vals.push(v);
                vals.push(-v);
            }
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        vals
    }
}

impl NumberFormat for AdaptivFloat {
    fn name(&self) -> String {
        format!("AdaptivFloat<{},{}>", self.n, self.e)
    }

    fn bits(&self) -> u32 {
        self.n
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::plan::{Backend, PlanParams, QuantPlan};
        // `params_for` over the single max reproduces both fused paths:
        // the from-data bits scan and the calibrated range (non-finite
        // calibrated maxima are filtered to the all-zero default).
        let params = self.params_for(&[stats.max_abs()]);
        let backend = match crate::kernels::FastQuantizer::new(self, &params) {
            Some(fast) => Backend::Kernel(fast),
            None => Backend::AdaptivRef { fmt: *self, params },
        };
        QuantPlan::new(
            self.n,
            PlanParams::AdaptivFloat {
                exp_bias: params.exp_bias,
            },
            backend,
        )
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

/// A tensor quantized to AdaptivFloat: bit-packed codes plus the shared
/// per-tensor parameters. This is the in-memory layout an accelerator
/// would hold in its weight buffer (codes) and a 4-bit register (bias).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    format: AdaptivFloat,
    params: AdaptivParams,
    codes: PackedCodes,
}

impl QuantizedTensor {
    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The shared per-tensor parameters (exponent bias).
    pub fn params(&self) -> &AdaptivParams {
        &self.params
    }

    /// The format descriptor.
    pub fn format(&self) -> &AdaptivFloat {
        &self.format
    }

    /// The raw code of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn code(&self, i: usize) -> u32 {
        self.codes.get(i) as u32
    }

    /// Decode element `i` back to `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> f32 {
        self.format.decode_with(&self.params, self.code(i))
    }

    /// Decode the whole tensor.
    pub fn dequantize(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Decode the whole tensor under a [`DecodePolicy`], returning the
    /// values and the per-tensor corruption counters.
    pub fn dequantize_with_policy(&self, policy: DecodePolicy) -> (Vec<f32>, DecodeStats) {
        let mut stats = DecodeStats::new();
        let vals = (0..self.len())
            .map(|i| {
                self.format
                    .decode_with_policy(&self.params, self.code(i), policy, &mut stats)
            })
            .collect();
        (vals, stats)
    }

    /// Read-only view of the packed code storage.
    pub fn codes(&self) -> &PackedCodes {
        &self.codes
    }

    /// Mutable view of the packed code storage — the surface a fault
    /// campaign corrupts, exactly as a bit upset in a hardware weight
    /// buffer would.
    pub fn codes_mut(&mut self) -> &mut PackedCodes {
        &mut self.codes
    }

    /// Storage footprint of the packed codes in bytes (excluding the
    /// constant-size parameter block).
    pub fn packed_bytes(&self) -> usize {
        self.codes.packed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn af(n: u32, e: u32) -> AdaptivFloat {
        AdaptivFloat::new(n, e).unwrap()
    }

    /// Figure 3 of the paper: AdaptivFloat<4,2> on the worked 4×4 matrix.
    #[test]
    fn figure3_worked_example() {
        let fmt = af(4, 2);
        #[rustfmt::skip]
        let w = [
            -1.17, 2.71, -1.60, 0.43,
            -1.14, 2.05, 1.01, 0.07,
            0.16, -0.03, -0.89, -0.87,
            -0.04, -0.39, 0.64, -2.89,
        ];
        let params = fmt.params_for(&w);
        assert_eq!(params.exp_bias, -2);
        assert_eq!(params.value_min(), 0.375);
        assert_eq!(params.value_max(), 3.0);
        #[rustfmt::skip]
        let expected = [
            -1.0, 3.0, -1.5, 0.375,
            -1.0, 2.0, 1.0, 0.0,
            0.0, 0.0, -1.0, -0.75,
            0.0, -0.375, 0.75, -3.0,
        ];
        let got = fmt.quantize_slice(&w);
        for (i, (&g, &e)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(g, e, "element {i}");
        }
    }

    /// Figure 2 of the paper: the <4,2> grid with exp_bias = −2 is
    /// ±{0.375, 0.5, 0.75, 1, 1.5, 2, 3} plus zero (±0.25 sacrificed).
    #[test]
    fn figure2_representable_grid() {
        let fmt = af(4, 2);
        let params = fmt.params_with_bias(-2);
        let vals = fmt.representable_values(&params);
        let expected: Vec<f32> = [-3.0, -2.0, -1.5, -1.0, -0.75, -0.5, -0.375]
            .into_iter()
            .chain([0.0])
            .chain([0.375, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0])
            .collect();
        assert_eq!(vals, expected);
        // 2^4 − 1 = 15 distinct values (±0 collapse into one).
        assert_eq!(vals.len(), 15);
    }

    #[test]
    fn exp_bias_tracks_max_abs() {
        let fmt = af(8, 3);
        // max |w| = 0.9 → exp_max = −1 → bias = −1 − 7 = −8.
        let params = fmt.params_for(&[0.1, -0.9, 0.5]);
        assert_eq!(params.exp_bias, -8);
        // max |w| = 20.0 → exp_max = 4 → bias = −3.
        let params = fmt.params_for(&[20.0, -3.0]);
        assert_eq!(params.exp_bias, -3);
    }

    #[test]
    fn exact_powers_of_two_boundary() {
        let fmt = af(8, 3);
        // 2^3 = 8 exactly: exp_max must be 3, not 2.
        let params = fmt.params_for(&[8.0]);
        assert_eq!(params.exp_bias, 3 - 7);
        // And 8.0 must round-trip exactly.
        assert_eq!(fmt.quantize_with(&params, 8.0), 8.0);
    }

    #[test]
    fn zero_and_signed_zero() {
        let fmt = af(8, 3);
        let params = fmt.params_for(&[1.0]);
        assert_eq!(fmt.quantize_with(&params, 0.0), 0.0);
        assert_eq!(fmt.quantize_with(&params, -0.0), 0.0);
        assert_eq!(fmt.encode_with(&params, 0.0), 0);
        // −0 encodes with the sign bit but decodes to 0.0.
        let neg_zero_code = fmt.encode_with(&params, -1e-30);
        assert_eq!(fmt.decode_with(&params, neg_zero_code), 0.0);
    }

    #[test]
    fn sub_minimum_halfway_rule() {
        let fmt = af(4, 2);
        let params = fmt.params_with_bias(-2); // vmin = 0.375
        assert_eq!(fmt.quantize_with(&params, 0.18), 0.0); // < vmin/2
        assert_eq!(fmt.quantize_with(&params, 0.19), 0.375); // ≥ vmin/2
        assert_eq!(fmt.quantize_with(&params, -0.19), -0.375);
    }

    #[test]
    fn clamps_to_value_max() {
        let fmt = af(4, 2);
        let params = fmt.params_with_bias(-2); // vmax = 3.0
        assert_eq!(fmt.quantize_with(&params, 100.0), 3.0);
        assert_eq!(fmt.quantize_with(&params, -100.0), -3.0);
        assert_eq!(fmt.quantize_with(&params, f32::INFINITY), 3.0);
        assert_eq!(fmt.quantize_with(&params, f32::NEG_INFINITY), -3.0);
        assert_eq!(fmt.quantize_with(&params, f32::NAN), 0.0);
    }

    #[test]
    fn mantissa_carry_does_not_exceed_value_max() {
        let fmt = af(4, 2);
        let params = fmt.params_with_bias(-2); // top point 3.0, vmax 3.0
                                               // 2.9 has mantissa 1.45 at exp 1 → rounds to 1.5 → 3.0. Fine.
        assert_eq!(fmt.quantize_with(&params, 2.9), 3.0);
        // 2.99 is below vmax but its mantissa would not carry past exp_max
        // (values ≥ vmax were already clamped); ensure no value above vmax
        // is ever produced across a dense sweep.
        let vmax = params.value_max() as f32;
        let mut x = -4.0f32;
        while x < 4.0 {
            assert!(fmt.quantize_with(&params, x).abs() <= vmax);
            x += 0.001;
        }
    }

    #[test]
    fn quantized_values_are_on_the_grid() {
        let fmt = af(6, 3);
        let data: Vec<f32> = (-100..100).map(|i| i as f32 * 0.037).collect();
        let params = fmt.params_for(&data);
        let grid = fmt.representable_values(&params);
        for &v in &data {
            let q = fmt.quantize_with(&params, v);
            assert!(grid.contains(&q), "{q} (from {v}) not on the grid");
        }
    }

    #[test]
    fn quantization_is_nearest_on_grid() {
        // Round-to-nearest: the chosen grid point minimizes |v − g| up to
        // tie-breaking.
        let fmt = af(6, 2);
        let data: Vec<f32> = (-200..200).map(|i| i as f32 * 0.01).collect();
        let params = fmt.params_for(&data);
        let grid = fmt.representable_values(&params);
        for &v in &data {
            let q = fmt.quantize_with(&params, v);
            let best = grid
                .iter()
                .map(|&g| (v - g).abs())
                .fold(f32::INFINITY, f32::min);
            let got = (v - q).abs();
            assert!(
                got <= best * (1.0 + 1e-6) + 1e-9,
                "v={v}: got err {got}, best {best}"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        for (n, e) in [(4, 2), (5, 2), (6, 3), (8, 3), (8, 4), (4, 3)] {
            let fmt = af(n, e);
            let params = fmt.params_with_bias(-5);
            for code in 0..(1u32 << n) {
                let v = fmt.decode_with(&params, code);
                let re = fmt.encode_with(&params, v);
                let v2 = fmt.decode_with(&params, re);
                assert_eq!(v, v2, "n={n} e={e} code={code:#x}");
            }
        }
    }

    #[test]
    fn idempotent_quantization() {
        let fmt = af(8, 3);
        let data: Vec<f32> = (-50..50).map(|i| i as f32 * 0.11).collect();
        let q1 = fmt.quantize_slice(&data);
        let q2 = fmt.quantize_slice(&q1);
        assert_eq!(q1, q2);
    }

    #[test]
    fn zero_mantissa_bits_word() {
        // AdaptivFloat<4,3>: sign + 3 exponent bits, no mantissa bits.
        let fmt = af(4, 3);
        assert_eq!(fmt.mantissa_bits(), 0);
        let params = fmt.params_for(&[1.0]);
        assert_eq!(params.exp_bias, -7);
        // Only powers of two (and zero); the minimum 2^-7 slot is zero's.
        let vals = fmt.representable_values(&params);
        assert_eq!(vals.len(), 15);
        assert!(vals.contains(&1.0));
        assert!(vals.contains(&0.015625)); // 2^-6 = value_min
        assert!(!vals.contains(&0.0078125)); // 2^-7 sacrificed
    }

    #[test]
    fn all_zero_tensor() {
        let fmt = af(8, 3);
        let q = fmt.quantize_slice(&[0.0, 0.0]);
        assert_eq!(q, vec![0.0, 0.0]);
        let qt = fmt.quantize_tensor(&[0.0; 10]);
        assert_eq!(qt.dequantize(), vec![0.0; 10]);
    }

    #[test]
    fn empty_tensor() {
        let fmt = af(8, 3);
        assert!(fmt.quantize_slice(&[]).is_empty());
        let qt = fmt.quantize_tensor(&[]);
        assert!(qt.is_empty());
        assert_eq!(qt.len(), 0);
    }

    #[test]
    fn quantized_tensor_roundtrip_and_footprint() {
        let fmt = af(8, 3);
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 5.0).collect();
        let qt = fmt.quantize_tensor(&data);
        let deq = qt.dequantize();
        let direct = fmt.quantize_slice(&data);
        assert_eq!(deq, direct);
        // 1000 × 8 bits = 1000 bytes, padded to u64 granularity.
        assert!(qt.packed_bytes() >= 1000 && qt.packed_bytes() <= 1008);
    }

    #[test]
    fn negative_values_mirror_positive() {
        let fmt = af(8, 3);
        let params = fmt.params_with_bias(-7);
        let mut x = 0.001f32;
        while x < 2.0 {
            let qp = fmt.quantize_with(&params, x);
            let qn = fmt.quantize_with(&params, -x);
            assert_eq!(qp, -qn, "x={x}");
            x *= 1.1;
        }
    }

    #[test]
    fn constructor_rejects_bad_geometry() {
        assert!(AdaptivFloat::new(8, 0).is_err());
        assert!(AdaptivFloat::new(8, 8).is_err());
        assert!(AdaptivFloat::new(1, 1).is_err());
        assert!(AdaptivFloat::new(33, 3).is_err());
        assert!(AdaptivFloat::new(8, 7).is_ok()); // m = 0 allowed
    }

    #[test]
    fn floor_log2_matches_naive() {
        for &x in &[
            1.0f64, 1.5, 2.0, 3.9, 4.0, 0.5, 0.25, 0.1, 1e-20, 1e20, 2.89,
        ] {
            let expected = x.log2().floor() as i32;
            assert_eq!(floor_log2(x), expected, "x={x}");
        }
        // f32 subnormal smallest positive.
        let tiny = f32::from_bits(1) as f64;
        assert_eq!(floor_log2(tiny), -149);
    }
}
