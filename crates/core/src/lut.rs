//! Precomputed codebook (LUT) quantizers for the enumerable formats.
//!
//! Every non-adaptive-per-element format at `n ≤ 8` bits maps an input
//! `f32` onto one of at most `2^n` output values through a **monotone
//! piecewise-constant** function (round-to-nearest onto a fixed grid,
//! plus saturation). That structure lets the whole scalar quantizer —
//! however expensive (`floor_log2`, `exp2`, f64 division, posit table
//! walks) — be compiled once into a sorted threshold table over the f32
//! *bit space* and then answered per element with one short binary
//! search over ≤ 255 thresholds.
//!
//! Exactness is guaranteed **by construction**: the thresholds are found
//! by bisecting the analytic scalar function itself over the bit patterns
//! of one sign half-axis (positive f32 bit patterns order identically to
//! their values, so a monotone quantizer that agrees at both ends of a
//! bit interval is constant across it). Zero-sign subtleties — e.g.
//! `FixedPoint` and `IeeeLikeFloat` crush tiny negatives to `-0.0` while
//! `Uniform` and `BlockFloat` produce `+0.0` — are captured automatically
//! because the axes are probed per sign and compared bit-for-bit.
//!
//! Tables are cached in a bounded process-wide cache keyed by format
//! geometry (plus the derived scale for `Uniform` / the shared exponent
//! for `BlockFloat`), so repeated per-tensor calls pay the build cost
//! once. The property tests in `tests/lut_matches_analytic.rs` verify
//! bit-exactness against the scalar paths for every format.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Bit pattern of +∞ (and the f32 exponent mask).
const INF_BITS: u32 = 0x7f80_0000;
/// Magnitude mask (everything but the sign bit).
const ABS_MASK: u32 = 0x7fff_ffff;

/// Slices shorter than this skip the LUT: the per-call cache lookup
/// costs more than a handful of scalar quantizations.
pub const MIN_LUT_LEN: usize = 32;

/// Largest word size the LUT path covers (`2^8` levels per sign).
pub const MAX_LUT_BITS: u32 = 8;

/// Maximum number of cached tables; the cache is emptied when full
/// (distinct keys come from format geometry and per-tensor scales, so
/// steady-state workloads stay far below the cap).
const CACHE_CAP: usize = 256;

/// One sign half-axis: `values[i]` is the output (as f32 bits) for every
/// input magnitude in `[thresholds[i-1], thresholds[i])` (bit-space),
/// with `thresholds[-1] = 0` and `thresholds[len] = ∞`.
#[derive(Debug)]
struct Axis {
    thresholds: Vec<u32>,
    values: Vec<u32>,
}

impl Axis {
    /// Build by bisecting `f` (input-magnitude bits → output bits) over
    /// `[0, INF_BITS]`. `f` must be monotone in the input *value*; the
    /// interval `[lo, hi]` is taken as constant whenever
    /// `f(lo) == f(hi)`, which monotonicity guarantees.
    fn build(f: &dyn Fn(u32) -> u32) -> Axis {
        let f_zero = f(0);
        let f_inf = f(INF_BITS);
        // (first input bits of a new level, that level's output bits)
        let mut switches: Vec<(u32, u32)> = Vec::new();
        let mut stack = vec![(0u32, INF_BITS, f_zero, f_inf)];
        while let Some((lo, hi, flo, fhi)) = stack.pop() {
            if flo == fhi {
                continue;
            }
            if lo + 1 == hi {
                switches.push((hi, fhi));
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            let fmid = f(mid);
            stack.push((lo, mid, flo, fmid));
            stack.push((mid, hi, fmid, fhi));
        }
        switches.sort_unstable();
        let mut thresholds = Vec::with_capacity(switches.len());
        let mut values = Vec::with_capacity(switches.len() + 1);
        values.push(f_zero);
        for (t, v) in switches {
            thresholds.push(t);
            values.push(v);
        }
        Axis { thresholds, values }
    }

    /// Output bits for input-magnitude bits `abs` (`abs ≤ INF_BITS`).
    #[inline]
    fn lookup(&self, abs: u32) -> u32 {
        let idx = self.thresholds.partition_point(|&t| t <= abs);
        self.values[idx]
    }
}

/// A compiled codebook quantizer: bit-identical to the scalar function it
/// was built from, at a flat per-element cost.
#[derive(Debug)]
pub struct LutQuantizer {
    pos: Axis,
    neg: Axis,
    nan_pos: u32,
    nan_neg: u32,
}

impl LutQuantizer {
    /// Compile `quantize` (any monotone scalar quantizer) into a
    /// codebook. The closure is probed a few thousand times.
    pub fn build(quantize: impl Fn(f32) -> f32) -> LutQuantizer {
        let pos = Axis::build(&|abs| quantize(f32::from_bits(abs)).to_bits());
        let neg = Axis::build(&|abs| quantize(f32::from_bits(abs | !ABS_MASK)).to_bits());
        LutQuantizer {
            pos,
            neg,
            nan_pos: quantize(f32::from_bits(0x7fc0_0000)).to_bits(),
            nan_neg: quantize(f32::from_bits(0xffc0_0000)).to_bits(),
        }
    }

    /// Quantize one value through the codebook.
    #[inline]
    pub fn quantize_one(&self, v: f32) -> f32 {
        let bits = v.to_bits();
        let abs = bits & ABS_MASK;
        let negative = bits >> 31 == 1;
        if abs > INF_BITS {
            return f32::from_bits(if negative { self.nan_neg } else { self.nan_pos });
        }
        let axis = if negative { &self.neg } else { &self.pos };
        f32::from_bits(axis.lookup(abs))
    }

    /// Quantize `src` into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn quantize_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.quantize_one(s);
        }
    }

    /// Quantize a slice into a fresh vector (parallel for large slices).
    pub fn quantize_slice(&self, data: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; data.len()];
        crate::par::par_zip_into(data, &mut out, |src, dst| self.quantize_into(src, dst));
        out
    }

    /// Number of distinct output levels over both sign axes (diagnostic).
    pub fn levels(&self) -> usize {
        self.pos.values.len() + self.neg.values.len()
    }
}

/// Cache key: format geometry plus any per-tensor scaling parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutKey {
    /// `IeeeLikeFloat<n, e>` — static grid.
    Ieee {
        /// Word size.
        n: u32,
        /// Exponent bits.
        e: u32,
    },
    /// `Posit<n, es>` — static grid.
    Posit {
        /// Word size.
        n: u32,
        /// Exponent field width.
        es: u32,
    },
    /// `FixedPoint` Qi.f — static grid.
    Fixed {
        /// Word size.
        n: u32,
        /// Integer bits.
        int_bits: u32,
    },
    /// `Uniform<n>` at one derived scale.
    Uniform {
        /// Word size.
        n: u32,
        /// `scale.to_bits()` of the per-tensor f64 scale.
        scale_bits: u64,
    },
    /// `BlockFloat<n>` at one shared exponent.
    Bfp {
        /// Word size.
        n: u32,
        /// The block's shared exponent.
        exp: i32,
    },
}

fn cache() -> &'static Mutex<HashMap<LutKey, Arc<LutQuantizer>>> {
    static CACHE: OnceLock<Mutex<HashMap<LutKey, Arc<LutQuantizer>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetch the codebook for `key`, building it with `quantize` on a miss.
/// The cache is process-wide and bounded (emptied at [`CACHE_CAP`]).
pub fn cached(key: LutKey, quantize: impl Fn(f32) -> f32) -> Arc<LutQuantizer> {
    let mut map = cache().lock().expect("lut cache poisoned");
    if let Some(hit) = map.get(&key) {
        return Arc::clone(hit);
    }
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    let built = Arc::new(LutQuantizer::build(quantize));
    map.insert(key, Arc::clone(&built));
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_a_step_function_exactly() {
        // A toy monotone quantizer: round to integers, clamp at ±3.
        let q = |v: f32| {
            if v.is_nan() {
                0.0
            } else {
                (v as f64).round().clamp(-3.0, 3.0) as f32
            }
        };
        let lut = LutQuantizer::build(q);
        let mut x = -10.0f32;
        while x < 10.0 {
            assert_eq!(lut.quantize_one(x).to_bits(), q(x).to_bits(), "x={x}");
            x += 0.01;
        }
        for v in [
            0.0f32,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
        ] {
            assert_eq!(lut.quantize_one(v).to_bits(), q(v).to_bits(), "v={v}");
        }
    }

    #[test]
    fn preserves_zero_sign_behavior() {
        // A quantizer that keeps −0.0 for negative underflow.
        let q = |v: f32| {
            if v.is_nan() {
                return 0.0;
            }
            let r = ((v as f64) * 4.0).round() / 4.0;
            r.clamp(-2.0, 2.0) as f32
        };
        assert_eq!(q(-0.1).to_bits(), (-0.0f32).to_bits());
        let lut = LutQuantizer::build(q);
        assert_eq!(lut.quantize_one(-0.1).to_bits(), (-0.0f32).to_bits());
        assert_eq!(lut.quantize_one(0.1).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn cache_hits_and_bound() {
        let a = cached(LutKey::Fixed { n: 6, int_bits: 2 }, |v| {
            if v.is_nan() {
                0.0
            } else {
                (v as f64).round().clamp(-2.0, 2.0) as f32
            }
        });
        let b = cached(LutKey::Fixed { n: 6, int_bits: 2 }, |_| {
            unreachable!("second call must hit the cache")
        });
        assert!(Arc::ptr_eq(&a, &b));
    }
}
