//! Precomputed codebook (LUT) quantizers for the enumerable formats.
//!
//! Every non-adaptive-per-element format at `n ≤ 8` bits maps an input
//! `f32` onto one of at most `2^n` output values through a **monotone
//! piecewise-constant** function (round-to-nearest onto a fixed grid,
//! plus saturation). That structure lets the whole scalar quantizer —
//! however expensive (`floor_log2`, `exp2`, f64 division, posit table
//! walks) — be compiled once into a sorted threshold table over the f32
//! *bit space* and then answered per element with one short binary
//! search over ≤ 255 thresholds.
//!
//! Exactness is guaranteed **by construction**: the thresholds are found
//! by bisecting the analytic scalar function itself over the bit patterns
//! of one sign half-axis (positive f32 bit patterns order identically to
//! their values, so a monotone quantizer that agrees at both ends of a
//! bit interval is constant across it). Zero-sign subtleties — e.g.
//! `FixedPoint` and `IeeeLikeFloat` crush tiny negatives to `-0.0` while
//! `Uniform` and `BlockFloat` produce `+0.0` — are captured automatically
//! because the axes are probed per sign and compared bit-for-bit.
//!
//! Tables are cached in a bounded process-wide cache keyed by format
//! geometry (plus the derived scale for `Uniform` / the shared exponent
//! for `BlockFloat`), so repeated per-tensor calls pay the build cost
//! once. The property tests in `tests/lut_matches_analytic.rs` verify
//! bit-exactness against the scalar paths for every format.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Bit pattern of +∞ (and the f32 exponent mask).
const INF_BITS: u32 = 0x7f80_0000;
/// Magnitude mask (everything but the sign bit).
const ABS_MASK: u32 = 0x7fff_ffff;

/// Slices shorter than this skip the LUT: the per-call cache lookup
/// costs more than a handful of scalar quantizations.
pub const MIN_LUT_LEN: usize = 32;

/// Largest word size the LUT path covers (`2^8` levels per sign).
pub const MAX_LUT_BITS: u32 = 8;

/// Maximum number of cached tables; the cache is emptied when full
/// (distinct keys come from format geometry and per-tensor scales, so
/// steady-state workloads stay far below the cap).
const CACHE_CAP: usize = 256;

/// One sign half-axis: `values[i]` is the output (as f32 bits) for every
/// input magnitude in `[thresholds[i-1], thresholds[i])` (bit-space),
/// with `thresholds[-1] = 0` and `thresholds[len] = ∞`.
#[derive(Debug)]
struct Axis {
    thresholds: Vec<u32>,
    values: Vec<u32>,
}

impl Axis {
    /// Build by bisecting `f` (input-magnitude bits → output bits) over
    /// `[0, INF_BITS]`. `f` must be monotone in the input *value*; the
    /// interval `[lo, hi]` is taken as constant whenever
    /// `f(lo) == f(hi)`, which monotonicity guarantees.
    fn build(f: &dyn Fn(u32) -> u32) -> Axis {
        let f_zero = f(0);
        let f_inf = f(INF_BITS);
        // (first input bits of a new level, that level's output bits)
        let mut switches: Vec<(u32, u32)> = Vec::new();
        let mut stack = vec![(0u32, INF_BITS, f_zero, f_inf)];
        while let Some((lo, hi, flo, fhi)) = stack.pop() {
            if flo == fhi {
                continue;
            }
            if lo + 1 == hi {
                switches.push((hi, fhi));
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            let fmid = f(mid);
            stack.push((lo, mid, flo, fmid));
            stack.push((mid, hi, fmid, fhi));
        }
        switches.sort_unstable();
        let mut thresholds = Vec::with_capacity(switches.len());
        let mut values = Vec::with_capacity(switches.len() + 1);
        values.push(f_zero);
        for (t, v) in switches {
            thresholds.push(t);
            values.push(v);
        }
        Axis { thresholds, values }
    }

    /// Output bits for input-magnitude bits `abs` (`abs ≤ INF_BITS`).
    #[inline]
    fn lookup(&self, abs: u32) -> u32 {
        let idx = self.thresholds.partition_point(|&t| t <= abs);
        self.values[idx]
    }
}

/// Both sign axes (NaN segments included) fused into one threshold table
/// over a *key space* that orders every f32 bit pattern: `key(bits) =
/// bits ^ ((bits >>ₐ 31) | 0x8000_0000)` maps −NaN < −∞ < … < −0 < +0 <
/// … < +∞ < +NaN onto ascending unsigned integers. The table is what the
/// AVX2 gather path searches — one branchless binary search instead of a
/// sign test plus a per-axis walk.
///
/// Stored pre-biased (`^ 0x8000_0000`) so vector code can compare keys
/// with signed `epi32` operations, and padded to a power of two with the
/// biased `u32::MAX` sentinel (`0x7fff_ffff`, i.e. `i32::MAX`) so the
/// search runs a fixed number of steps. `values` carries one extra
/// slot: `values[i]` is the output when exactly `i` thresholds are ≤ the
/// key, and every padding slot repeats the +NaN output (the only key
/// that can count a sentinel is `u32::MAX`, which *is* the top +NaN
/// pattern).
#[derive(Debug)]
pub(crate) struct CombinedLut {
    /// Biased switch keys, padded to a power-of-two length.
    pub(crate) thresholds_biased: Vec<u32>,
    /// Output bit patterns, `thresholds_biased.len() + 1` entries.
    pub(crate) values: Vec<u32>,
}

impl CombinedLut {
    /// Fuse the per-sign axes into the combined key-space table.
    ///
    /// Built analytically from the already-bisected axes — never by
    /// re-bisecting the quantizer over the key space, because the NaN
    /// segments at both ends are not monotone continuations of the value
    /// order that `Axis::build`'s interval-collapse rule assumes.
    fn build(pos: &Axis, neg: &Axis, nan_pos: u32, nan_neg: u32) -> CombinedLut {
        let mut keys: Vec<u32> = Vec::new();
        let mut values: Vec<u32> = vec![nan_neg];
        let push = |keys: &mut Vec<u32>, values: &mut Vec<u32>, key: u32, val: u32| {
            if *values.last().expect("seeded") == val {
                return; // adjacent segments with equal output fuse
            }
            debug_assert!(keys.last().is_none_or(|&k| k < key));
            keys.push(key);
            values.push(val);
        };
        // Negative axis, walked from −∞ upward: magnitude `abs` maps to
        // key K(abs) = 0x7fff_ffff − abs, so axis segment `i` (inputs in
        // [t_{i−1}, t_i)) covers keys (K(t_i), K(t_{i−1})] — each switch
        // *down* one segment happens at key K(t_{i−1}) + 1.
        let k = |abs: u32| ABS_MASK - abs;
        push(
            &mut keys,
            &mut values,
            k(INF_BITS),
            neg.values[neg.values.len() - 1],
        );
        for i in (1..neg.values.len()).rev() {
            push(
                &mut keys,
                &mut values,
                k(neg.thresholds[i - 1]) + 1,
                neg.values[i - 1],
            );
        }
        // Positive axis: magnitude `abs` maps to key 0x8000_0000 + abs.
        push(&mut keys, &mut values, 0x8000_0000, pos.values[0]);
        for i in 1..pos.values.len() {
            push(
                &mut keys,
                &mut values,
                0x8000_0000 + pos.thresholds[i - 1],
                pos.values[i],
            );
        }
        // +NaN: every key above the +∞ pattern.
        push(&mut keys, &mut values, 0x8000_0000 + INF_BITS + 1, nan_pos);
        // Pre-bias for signed compares, pad to a power of two.
        let padded = keys.len().next_power_of_two().max(1);
        let mut thresholds_biased: Vec<u32> = keys.iter().map(|&key| key ^ 0x8000_0000).collect();
        thresholds_biased.resize(padded, u32::MAX ^ 0x8000_0000);
        values.resize(padded + 1, nan_pos);
        CombinedLut {
            thresholds_biased,
            values,
        }
    }

    /// Scalar lookup over the combined table (the vector path's oracle;
    /// exercised by the unit tests below to pin the construction).
    #[cfg(test)]
    fn lookup_bits(&self, bits: u32) -> u32 {
        let key = bits ^ ((((bits as i32) >> 31) as u32) >> 1); // biased key
        let idx = self
            .thresholds_biased
            .partition_point(|&t| (t as i32) <= (key as i32));
        self.values[idx]
    }
}

/// A compiled codebook quantizer: bit-identical to the scalar function it
/// was built from, at a flat per-element cost.
#[derive(Debug)]
pub struct LutQuantizer {
    pos: Axis,
    neg: Axis,
    nan_pos: u32,
    nan_neg: u32,
    /// The axes fused for the SIMD gather path (`crate::simd`).
    pub(crate) combined: CombinedLut,
}

impl LutQuantizer {
    /// Compile `quantize` (any monotone scalar quantizer) into a
    /// codebook. The closure is probed a few thousand times.
    pub fn build(quantize: impl Fn(f32) -> f32) -> LutQuantizer {
        let pos = Axis::build(&|abs| quantize(f32::from_bits(abs)).to_bits());
        let neg = Axis::build(&|abs| quantize(f32::from_bits(abs | !ABS_MASK)).to_bits());
        let nan_pos = quantize(f32::from_bits(0x7fc0_0000)).to_bits();
        let nan_neg = quantize(f32::from_bits(0xffc0_0000)).to_bits();
        let combined = CombinedLut::build(&pos, &neg, nan_pos, nan_neg);
        LutQuantizer {
            pos,
            neg,
            nan_pos,
            nan_neg,
            combined,
        }
    }

    /// Quantize one value through the codebook.
    #[inline]
    pub fn quantize_one(&self, v: f32) -> f32 {
        let bits = v.to_bits();
        let abs = bits & ABS_MASK;
        let negative = bits >> 31 == 1;
        if abs > INF_BITS {
            return f32::from_bits(if negative { self.nan_neg } else { self.nan_pos });
        }
        let axis = if negative { &self.neg } else { &self.pos };
        f32::from_bits(axis.lookup(abs))
    }

    /// Quantize `src` into `dst`, through the gathered key-space search
    /// on AVX2 hosts (see [`crate::simd`]). Bit-identical to
    /// [`quantize_into_scalar`](Self::quantize_into_scalar) always.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn quantize_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        crate::simd::quantize_lut(self, src, dst);
    }

    /// Quantize `src` into `dst` through the scalar per-sign axis walk —
    /// the vector path's reference twin, exposed so benchmarks and the
    /// bit-identity suites can compare both legs in one process.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn quantize_into_scalar(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.quantize_one(s);
        }
    }

    /// Quantize `data` where it sits (SIMD-dispatched like
    /// [`quantize_into`](Self::quantize_into)).
    pub fn quantize_in_place(&self, data: &mut [f32]) {
        crate::simd::quantize_lut_in_place(self, data);
    }

    /// Quantize a slice into a fresh vector (parallel for large slices).
    pub fn quantize_slice(&self, data: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; data.len()];
        crate::par::par_zip_into(data, &mut out, |src, dst| self.quantize_into(src, dst));
        out
    }

    /// Number of distinct output levels over both sign axes (diagnostic).
    pub fn levels(&self) -> usize {
        self.pos.values.len() + self.neg.values.len()
    }
}

/// Cache key: format geometry plus any per-tensor scaling parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutKey {
    /// `IeeeLikeFloat<n, e>` — static grid.
    Ieee {
        /// Word size.
        n: u32,
        /// Exponent bits.
        e: u32,
    },
    /// `Posit<n, es>` — static grid.
    Posit {
        /// Word size.
        n: u32,
        /// Exponent field width.
        es: u32,
    },
    /// `FixedPoint` Qi.f — static grid.
    Fixed {
        /// Word size.
        n: u32,
        /// Integer bits.
        int_bits: u32,
    },
    /// `Uniform<n>` at one derived scale.
    Uniform {
        /// Word size.
        n: u32,
        /// `scale.to_bits()` of the per-tensor f64 scale.
        scale_bits: u64,
    },
    /// `BlockFloat<n>` at one shared exponent.
    Bfp {
        /// Word size.
        n: u32,
        /// The block's shared exponent.
        exp: i32,
    },
}

fn cache() -> &'static RwLock<HashMap<LutKey, Arc<LutQuantizer>>> {
    static CACHE: OnceLock<RwLock<HashMap<LutKey, Arc<LutQuantizer>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Number of times the cache's write lock has been taken (misses and
/// prewarms). A warmed serve path must leave this untouched — see
/// `tests/lut_prewarm.rs`.
static WRITE_ACQUISITIONS: AtomicUsize = AtomicUsize::new(0);

/// How many times the cache write lock has been acquired since process
/// start. Read-path hits never touch the write lock, so a serving loop
/// over prewarmed codebooks keeps this constant while it runs.
pub fn write_lock_acquisitions() -> usize {
    WRITE_ACQUISITIONS.load(Ordering::SeqCst)
}

/// Look up an already-built codebook without ever taking the write lock.
pub fn lookup(key: &LutKey) -> Option<Arc<LutQuantizer>> {
    cache()
        .read()
        .expect("lut cache poisoned")
        .get(key)
        .map(Arc::clone)
}

/// Whether a codebook for `key` is already resident.
pub fn is_warm(key: &LutKey) -> bool {
    lookup(key).is_some()
}

/// Insert `built` under `key` (keeping any table that raced us in).
fn insert(key: LutKey, built: Arc<LutQuantizer>) -> Arc<LutQuantizer> {
    WRITE_ACQUISITIONS.fetch_add(1, Ordering::SeqCst);
    let mut map = cache().write().expect("lut cache poisoned");
    if let Some(hit) = map.get(&key) {
        return Arc::clone(hit);
    }
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&built));
    built
}

/// Fetch the codebook for `key`, building it with `quantize` on a miss.
/// The cache is process-wide and bounded (emptied when it reaches capacity).
///
/// Hits take only the read lock; misses build the table *outside* any
/// lock (two racing builders both build, one insertion wins) and then
/// take the write lock briefly to publish it.
pub fn cached(key: LutKey, quantize: impl Fn(f32) -> f32) -> Arc<LutQuantizer> {
    if let Some(hit) = lookup(&key) {
        return hit;
    }
    insert(key, Arc::new(LutQuantizer::build(quantize)))
}

/// Build the codebook for `key` ahead of use (model-registration time)
/// so the first request that needs it pays a read-lock lookup instead of
/// a build under the write lock. Returns `true` if a table was built,
/// `false` if one was already warm.
pub fn prewarm(key: LutKey, quantize: impl Fn(f32) -> f32) -> bool {
    if is_warm(&key) {
        return false;
    }
    insert(key, Arc::new(LutQuantizer::build(quantize)));
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_a_step_function_exactly() {
        // A toy monotone quantizer: round to integers, clamp at ±3.
        let q = |v: f32| {
            if v.is_nan() {
                0.0
            } else {
                (v as f64).round().clamp(-3.0, 3.0) as f32
            }
        };
        let lut = LutQuantizer::build(q);
        let mut x = -10.0f32;
        while x < 10.0 {
            assert_eq!(lut.quantize_one(x).to_bits(), q(x).to_bits(), "x={x}");
            x += 0.01;
        }
        for v in [
            0.0f32,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
        ] {
            assert_eq!(lut.quantize_one(v).to_bits(), q(v).to_bits(), "v={v}");
        }
    }

    #[test]
    fn combined_table_matches_axes_everywhere() {
        // The fused key-space table must agree with the per-sign axis
        // walk on every bit pattern class: both sign halves, both NaN
        // ranges, ±0, ±∞, subnormals, and the segment boundaries.
        let q = |v: f32| {
            if v.is_nan() {
                return -1.0; // asymmetric NaN output to catch mix-ups
            }
            let r = ((v as f64) * 4.0).round() / 4.0;
            r.clamp(-2.0, 3.0) as f32
        };
        let lut = LutQuantizer::build(q);
        assert!(lut.combined.thresholds_biased.len().is_power_of_two());
        assert_eq!(
            lut.combined.values.len(),
            lut.combined.thresholds_biased.len() + 1
        );
        let check = |bits: u32| {
            assert_eq!(
                lut.combined.lookup_bits(bits),
                lut.quantize_one(f32::from_bits(bits)).to_bits(),
                "bits={bits:#010x}"
            );
        };
        for bits in [
            0u32,
            0x8000_0000,
            1,
            0x8000_0001,
            0x007f_ffff,
            INF_BITS - 1,
            INF_BITS,
            INF_BITS + 1,
            0x7fc0_0000,
            0x7fff_ffff,
            INF_BITS | 0x8000_0000,
            0xffc0_0000,
            u32::MAX,
        ] {
            check(bits);
        }
        // Dense sweep across both axes, hitting every segment edge.
        let mut bits = 0u32;
        while bits < INF_BITS {
            check(bits);
            check(bits | 0x8000_0000);
            bits = bits.wrapping_add(0x0001_7f39);
        }
        for &t in lut.pos.thresholds.iter().chain(&lut.neg.thresholds) {
            for d in [t.wrapping_sub(1), t, t + 1] {
                check(d);
                check(d | 0x8000_0000);
            }
        }
    }

    #[test]
    fn preserves_zero_sign_behavior() {
        // A quantizer that keeps −0.0 for negative underflow.
        let q = |v: f32| {
            if v.is_nan() {
                return 0.0;
            }
            let r = ((v as f64) * 4.0).round() / 4.0;
            r.clamp(-2.0, 2.0) as f32
        };
        assert_eq!(q(-0.1).to_bits(), (-0.0f32).to_bits());
        let lut = LutQuantizer::build(q);
        assert_eq!(lut.quantize_one(-0.1).to_bits(), (-0.0f32).to_bits());
        assert_eq!(lut.quantize_one(0.1).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn cache_hits_and_bound() {
        let a = cached(LutKey::Fixed { n: 6, int_bits: 2 }, |v| {
            if v.is_nan() {
                0.0
            } else {
                (v as f64).round().clamp(-2.0, 2.0) as f32
            }
        });
        let b = cached(LutKey::Fixed { n: 6, int_bits: 2 }, |_| {
            unreachable!("second call must hit the cache")
        });
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prewarm_builds_once_then_serves_lookups() {
        let key = LutKey::Fixed { n: 5, int_bits: 1 };
        let q = |v: f32| {
            if v.is_nan() {
                0.0
            } else {
                ((v as f64) * 8.0).round().clamp(-8.0, 8.0) as f32 / 8.0
            }
        };
        let first = prewarm(key, q);
        // Whether or not another test warmed it first, a second prewarm
        // must be a no-op and lookups must resolve without a builder.
        assert!(!prewarm(key, |_| unreachable!("already warm")));
        let _ = first;
        assert!(is_warm(&key));
        let table = lookup(&key).expect("warm after prewarm");
        let via_cached = cached(key, |_| unreachable!("must hit the cache"));
        assert!(Arc::ptr_eq(&table, &via_cached));
        assert_eq!(table.quantize_one(0.3).to_bits(), q(0.3).to_bits());
    }
}
