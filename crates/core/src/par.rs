//! A minimal scoped-thread parallel runtime (no dependencies).
//!
//! The heavy loops in this workspace — slice quantization, matmul,
//! im2col — are all embarrassingly parallel over disjoint output ranges.
//! Rather than pull in a thread-pool crate, this module fans such loops
//! out over [`std::thread::scope`]: threads are spawned per call and
//! joined before returning, so borrowed (non-`'static`) data flows in
//! freely and no global executor state exists.
//!
//! Thread count comes from [`std::thread::available_parallelism`], and can
//! be pinned with the `AF_NUM_THREADS` environment variable (read once per
//! process; `AF_NUM_THREADS=1` forces every helper serial). Because each
//! call pays real thread-spawn cost (tens of microseconds), callers gate
//! on [`parallelism_worthwhile`] — below the cutoff the serial loop is
//! both simpler and faster.

use std::panic::AssertUnwindSafe;
use std::sync::{Mutex, OnceLock};

/// Minimum number of per-element operations before fanning out threads
/// is worth the spawn cost (see [`parallelism_worthwhile`]).
pub const PAR_MIN_LEN: usize = 1 << 15;

/// The number of worker threads parallel helpers fan out to.
///
/// `AF_NUM_THREADS` (if set to a positive integer) wins; otherwise
/// [`std::thread::available_parallelism`], defaulting to 1 if even that
/// is unavailable. Malformed settings — `0`, negative numbers, empty
/// strings, non-numeric garbage, or values that overflow `usize` — are
/// ignored in favor of the detected parallelism: pinning the thread
/// count is an optimization hint, never a way to crash or to spawn zero
/// workers. Cached after the first call.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        parse_num_threads(std::env::var("AF_NUM_THREADS").ok().as_deref(), fallback)
    })
}

/// Resolve an `AF_NUM_THREADS` setting against a detected fallback:
/// a positive integer (surrounding whitespace tolerated) wins; anything
/// else — unset, empty, `0`, negative, garbage, overflow — yields
/// `fallback` (clamped to at least 1 so callers can never end up with
/// zero workers).
fn parse_num_threads(raw: Option<&str>, fallback: usize) -> usize {
    let fallback = fallback.max(1);
    match raw.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => fallback,
    }
}

/// Whether a loop of `len` roughly-uniform element operations should be
/// fanned out: `len ≥ PAR_MIN_LEN` and more than one thread available.
pub fn parallelism_worthwhile(len: usize) -> bool {
    len >= PAR_MIN_LEN && num_threads() > 1
}

/// Call `f(chunk_index, chunk)` for every `chunk_len`-sized chunk of
/// `data` (last chunk may be shorter), fanning the chunks out across
/// [`num_threads`] scoped threads. Chunk indices match
/// `data.chunks_mut(chunk_len).enumerate()`; each chunk is processed
/// exactly once, in unspecified order.
///
/// # Panics
///
/// Panics if `chunk_len == 0`. A panic inside `f` propagates to the
/// caller with its original payload: every other worker finishes its
/// chunks first (no chunk is skipped, no join is deadlocked), then the
/// first captured panic is resumed at the call site.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = num_threads();
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads == 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Deal chunks round-robin into one work list per thread; round-robin
    // balances systematic cost gradients (e.g. triangular workloads).
    let buckets = threads.min(n_chunks);
    let mut work: Vec<Vec<(usize, &mut [T])>> = (0..buckets).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        work[i % buckets].push((i, chunk));
    }
    // Each bucket catches its own panic so sibling workers always run to
    // completion and `scope`'s implicit join can never see an unjoined
    // panicked thread; the first payload is re-raised on the caller.
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let run_bucket = |bucket: Vec<(usize, &mut [T])>| {
        for (i, chunk) in bucket {
            if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| f(i, chunk))) {
                first_panic
                    .lock()
                    .expect("panic slot poisoned")
                    .get_or_insert(payload);
            }
        }
    };
    std::thread::scope(|scope| {
        let run_bucket = &run_bucket;
        let mut first = None;
        for (t, bucket) in work.into_iter().enumerate() {
            if t == 0 {
                first = Some(bucket); // run on the calling thread
            } else {
                scope.spawn(move || run_bucket(bucket));
            }
        }
        run_bucket(first.expect("at least one bucket"));
    });
    if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
        std::panic::resume_unwind(payload);
    }
}

/// Fill `dst` from equal-length `src` chunk-by-chunk in parallel:
/// `f(src_chunk, dst_chunk)` runs once per corresponding chunk pair.
/// Falls back to a single serial call when the work is too small
/// ([`parallelism_worthwhile`]).
///
/// # Panics
///
/// Panics if the slices have different lengths. A panic inside `f`
/// propagates.
pub fn par_zip_into<T, U, F>(src: &[T], dst: &mut [U], f: F)
where
    T: Sync,
    U: Send,
    F: Fn(&[T], &mut [U]) + Sync,
{
    assert_eq!(src.len(), dst.len(), "slice length mismatch");
    if !parallelism_worthwhile(src.len()) {
        f(src, dst);
        return;
    }
    let chunk_len = src.len().div_ceil(num_threads()).max(1);
    par_chunks_mut(dst, chunk_len, |i, dst_chunk| {
        let start = i * chunk_len;
        f(&src[start..start + dst_chunk.len()], dst_chunk);
    });
}

/// Apply `f` to `data` in place, splitting into one chunk per thread
/// when the slice is big enough ([`parallelism_worthwhile`]); otherwise
/// one serial call over the whole slice.
///
/// # Panics
///
/// A panic inside `f` propagates.
pub fn par_apply<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    if !parallelism_worthwhile(data.len()) {
        f(data);
        return;
    }
    let chunk_len = data.len().div_ceil(num_threads()).max(1);
    par_chunks_mut(data, chunk_len, |_, chunk| f(chunk));
}

/// Map a scalar function over a slice into a fresh vector, in parallel
/// for large slices. The convenience form of [`par_zip_into`] every
/// format's element-wise quantizer uses.
pub fn par_map_slice<F>(data: &[f32], f: F) -> Vec<f32>
where
    F: Fn(f32) -> f32 + Sync,
{
    let mut out = vec![0.0f32; data.len()];
    par_zip_into(data, &mut out, |src, dst| {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = f(v);
        }
    });
    out
}

/// Run two closures, potentially in parallel, returning both results.
/// Serial (in order `a` then `b`) when only one thread is available.
///
/// # Panics
///
/// A panic inside either closure propagates.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if num_threads() == 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("parallel closure panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 100_001];
        par_chunks_mut(&mut data, 997, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (j / 997) as u32, "element {j}");
        }
    }

    #[test]
    fn zip_matches_serial_map() {
        let src: Vec<f32> = (0..(PAR_MIN_LEN + 7)).map(|i| i as f32 * 0.5).collect();
        let mut dst = vec![0.0f32; src.len()];
        par_zip_into(&src, &mut dst, |s, d| {
            for (o, &x) in d.iter_mut().zip(s) {
                *o = x * 2.0 + 1.0;
            }
        });
        for (i, (&s, &d)) in src.iter().zip(&dst).enumerate() {
            assert_eq!(d, s * 2.0 + 1.0, "element {i}");
        }
    }

    #[test]
    fn zip_small_input_stays_serial() {
        let src = [1.0f32, 2.0, 3.0];
        let mut dst = [0.0f32; 3];
        par_zip_into(&src, &mut dst, |s, d| {
            assert_eq!(s.len(), 3); // one call, whole slice
            d.copy_from_slice(s);
        });
        assert_eq!(dst, src);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = par_join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parse_num_threads_accepts_positive_integers() {
        assert_eq!(parse_num_threads(Some("4"), 8), 4);
        assert_eq!(parse_num_threads(Some(" 16 \n"), 8), 16);
        assert_eq!(parse_num_threads(Some("1"), 8), 1);
    }

    #[test]
    fn parse_num_threads_falls_back_on_garbage() {
        for bad in [
            "0",
            "-2",
            "",
            "   ",
            "abc",
            "4.5",
            "1e3",
            "0x10",
            "99999999999999999999999999",
        ] {
            assert_eq!(parse_num_threads(Some(bad), 6), 6, "input {bad:?}");
        }
        assert_eq!(parse_num_threads(None, 6), 6);
        // A zero fallback (pathological available_parallelism) still
        // yields at least one worker.
        assert_eq!(parse_num_threads(Some("junk"), 0), 1);
    }

    #[test]
    fn empty_and_single_chunk() {
        let mut empty: [u8; 0] = [];
        par_chunks_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut one = [1u8, 2, 3];
        let calls = std::sync::atomic::AtomicUsize::new(0);
        par_chunks_mut(&mut one, 8, |i, c| {
            assert_eq!((i, c.len()), (0, 3));
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(calls.into_inner(), 1);
    }

    #[test]
    fn panic_in_one_chunk_propagates_after_others_complete() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let processed = AtomicUsize::new(0);
        let mut data = vec![0u8; 64];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_chunks_mut(&mut data, 4, |i, chunk| {
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
                chunk.fill(1);
                processed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        // The panic surfaces at the call site with its original payload…
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload preserved");
        assert_eq!(msg, "chunk 3 exploded");
        if num_threads() > 1 {
            // …and every other chunk still ran to completion (16 − 1).
            assert_eq!(processed.load(Ordering::Relaxed), 15);
        } else {
            // Serial fallback: panics at chunk 3 after chunks 0..=2.
            assert_eq!(processed.load(Ordering::Relaxed), 3);
        }
    }

    #[test]
    fn panic_in_serial_path_propagates_too() {
        let mut data = vec![0u8; 8];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // One chunk ⇒ the serial fallback runs `f` inline.
            par_chunks_mut(&mut data, 16, |_, _| panic!("serial boom"));
        }));
        let payload = result.expect_err("panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("serial boom"));
    }
}
