//! Runtime-dispatched SIMD kernels (AVX2 / SSE4.1) for the hot loops.
//!
//! Every vector path here is **bit-identical** to the scalar kernel it
//! accelerates — the dispatch is a pure speed choice, never a numerics
//! choice — and every entry point falls back to the scalar twin when the
//! host lacks the instruction set or when `AF_FORCE_SCALAR` is set:
//!
//! * [`FastQuantizer`] quantization: the scalar round/clamp decision tree
//!   becomes a branch-free vector expression. The carry case (mantissa
//!   rounding up to 2.0) is absorbed algebraically — for main-range
//!   values the result is `sign | ((abs & EXP_MASK) + (q << shift) −
//!   2^23)` whether or not the significand carried, because a carry makes
//!   `q << shift` equal `2^24` and the `− 2^23` then lands exactly one
//!   exponent step up. The four special regions (underflow, promote to
//!   `value_min`, clamp to `value_max`, NaN) become blends on signed
//!   32-bit compares, which are safe because every magnitude pattern and
//!   threshold is ≤ `0x7fff_ffff` (non-negative as `i32`).
//! * LUT codebook gather: the two per-sign threshold axes are fused into
//!   one table over a sign-folded *key space* (`key = bits ^ ((bits >>ₐ
//!   31) | 0x8000_0000)` orders all f32 patterns, NaNs included, as plain
//!   unsigned integers), searched with a branchless binary search whose
//!   probes are `vpgatherdd` gathers. Requires AVX2 (gathers); SSE4.1
//!   hosts use the scalar axis walk.
//! * Fused max-abs/non-finite scan, `PackedCodes` word pack/unpack, the
//!   packed-GEMM decode primitives (AdaptivFloat codes rebuilt into f32
//!   bit patterns algebraically, uniform codes via exact `i32 → f64 →
//!   f32` conversion), and the `axpy` row update the GEMM microkernels
//!   share (element-wise multiply **then** add, never an FMA, so vector
//!   and scalar rounding agree).
//!
//! The active ISA is detected once per process ([`active`]) and reported
//! by [`report`] so benchmark snapshots can stamp the capability that
//! produced them. Setting the `AF_FORCE_SCALAR` environment variable to
//! anything but `0`/empty pins every dispatch to the scalar twins — the
//! escape hatch CI uses to run the bit-identity suites on both legs.

use std::sync::OnceLock;

use crate::kernels::FastQuantizer;
use crate::lut::LutQuantizer;

/// The instruction set a dispatched kernel will use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// 8-lane f32/i32 vectors (`std::arch` AVX2, includes gathers).
    Avx2,
    /// 4-lane f32/i32 vectors (`std::arch` SSE4.1; no gathers, so the
    /// LUT and decode paths fall back to scalar).
    Sse41,
    /// Plain scalar loops (non-x86 hosts, pre-SSE4.1 CPUs, or
    /// `AF_FORCE_SCALAR`).
    Scalar,
}

impl Isa {
    /// Lower-case label for reports and JSON (`"avx2"`, `"sse4.1"`,
    /// `"scalar"`).
    pub fn label(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Sse41 => "sse4.1",
            Isa::Scalar => "scalar",
        }
    }

    /// f32 lanes per vector register (1 for scalar).
    pub fn lanes(self) -> usize {
        match self {
            Isa::Avx2 => 8,
            Isa::Sse41 => 4,
            Isa::Scalar => 1,
        }
    }
}

/// Whether `AF_FORCE_SCALAR` pinned the dispatch to scalar (read once).
pub fn forced_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("AF_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// The ISA every dispatched kernel in this process uses, detected once:
/// the widest of AVX2 / SSE4.1 the host offers, unless `AF_FORCE_SCALAR`
/// pins it to [`Isa::Scalar`].
pub fn active() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if forced_scalar() {
            return Isa::Scalar;
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Isa {
    if is_x86_feature_detected!("avx2") {
        Isa::Avx2
    } else if is_x86_feature_detected!("sse4.1") {
        Isa::Sse41
    } else {
        Isa::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Isa {
    Isa::Scalar
}

/// Capability snapshot of the SIMD dispatch, stamped into `BENCH_*.json`
/// so perf trajectories stay comparable across hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdReport {
    /// The ISA dispatched kernels run on.
    pub isa: Isa,
    /// f32 lanes per vector op on that ISA.
    pub lanes: usize,
    /// Whether `AF_FORCE_SCALAR` overrode detection.
    pub forced_scalar: bool,
    /// Host supports AVX2 (regardless of the override).
    pub avx2_available: bool,
    /// Host supports SSE4.1 (regardless of the override).
    pub sse41_available: bool,
}

/// The process-wide capability report (see [`SimdReport`]).
pub fn report() -> SimdReport {
    let detected = detect();
    SimdReport {
        isa: active(),
        lanes: active().lanes(),
        forced_scalar: forced_scalar(),
        avx2_available: detected == Isa::Avx2,
        sse41_available: matches!(detected, Isa::Avx2 | Isa::Sse41),
    }
}

impl SimdReport {
    /// Render as a one-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"isa\":\"{}\",\"lanes\":{},\"forced_scalar\":{},\
             \"avx2_available\":{},\"sse41_available\":{}}}",
            self.isa.label(),
            self.lanes,
            self.forced_scalar,
            self.avx2_available,
            self.sse41_available
        )
    }
}

// ---------------------------------------------------------------------
// FastQuantizer quantization
// ---------------------------------------------------------------------

/// Quantize `src` into `dst` (same length) through `fq`, vectorized when
/// the host allows. Bit-identical to `fq.quantize_one` per element.
pub(crate) fn quantize_fast(fq: &FastQuantizer, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: `active()` returned Avx2, so the host supports the
            // avx2 target feature; pointers cover `len` valid f32s.
            x86::quantize_avx2(fq, src.as_ptr(), dst.as_mut_ptr(), src.len());
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse41 => unsafe {
            // SAFETY: as above, with sse4.1 detected.
            x86::quantize_sse41(fq, src.as_ptr(), dst.as_mut_ptr(), src.len());
        },
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = fq.quantize_one(s);
            }
        }
    }
}

/// In-place variant of [`quantize_fast`].
pub(crate) fn quantize_fast_in_place(fq: &FastQuantizer, data: &mut [f32]) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; reading and writing the same buffer
            // is fine because each vector load completes before the
            // store to the same addresses.
            x86::quantize_avx2(fq, data.as_ptr(), data.as_mut_ptr(), data.len());
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse41 => unsafe {
            // SAFETY: as above, with sse4.1 detected.
            x86::quantize_sse41(fq, data.as_ptr(), data.as_mut_ptr(), data.len());
        },
        _ => {
            for v in data.iter_mut() {
                *v = fq.quantize_one(*v);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fused max-abs / first-non-finite scan
// ---------------------------------------------------------------------

/// One pass over `data`: the maximum finite magnitude as an f32 bit
/// pattern (0 when empty/all-zero/all-non-finite) and the index of the
/// first non-finite element. The canonical scan behind both
/// `kernels::max_abs_bits` and `QuantStats::from_slice`.
pub fn scan_abs(data: &[f32]) -> (u32, Option<usize>) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; the slice is read-only.
            x86::scan_avx2(data)
        },
        _ => scan_abs_scalar(data),
    }
}

/// Scalar twin of [`scan_abs`] (also the tail loop of the vector path).
pub fn scan_abs_scalar(data: &[f32]) -> (u32, Option<usize>) {
    scan_tail(data, 0, 0, None)
}

/// Fold the scalar scan over `data[start..]` with running state.
fn scan_tail(
    data: &[f32],
    start: usize,
    mut max: u32,
    mut first_non_finite: Option<usize>,
) -> (u32, Option<usize>) {
    const EXP_MASK: u32 = 0x7f80_0000;
    const ABS_MASK: u32 = 0x7fff_ffff;
    for (i, &v) in data.iter().enumerate().skip(start) {
        let abs = v.to_bits() & ABS_MASK;
        if abs >= EXP_MASK {
            if first_non_finite.is_none() {
                first_non_finite = Some(i);
            }
        } else if abs > max {
            max = abs;
        }
    }
    (max, first_non_finite)
}

// ---------------------------------------------------------------------
// LUT codebook gather
// ---------------------------------------------------------------------

/// Quantize `src` into `dst` through `lut`'s codebook, using the fused
/// key-space table with gathered binary search on AVX2 and the scalar
/// per-sign axis walk otherwise. Bit-identical to `lut.quantize_one`.
pub(crate) fn quantize_lut(lut: &LutQuantizer, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; the combined table's invariants
            // (power-of-two threshold count, values one longer) are
            // established at build time in `lut.rs`.
            x86::lut_avx2(lut, src.as_ptr(), dst.as_mut_ptr(), src.len());
        },
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = lut.quantize_one(s);
            }
        }
    }
}

/// In-place variant of [`quantize_lut`].
pub(crate) fn quantize_lut_in_place(lut: &LutQuantizer, data: &mut [f32]) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: as in `quantize_lut`; same-buffer load/store is
            // ordered per chunk.
            x86::lut_avx2(lut, data.as_ptr(), data.as_mut_ptr(), data.len());
        },
        _ => {
            for v in data.iter_mut() {
                *v = lut.quantize_one(*v);
            }
        }
    }
}

// ---------------------------------------------------------------------
// GEMM primitives
// ---------------------------------------------------------------------

/// `y[i] += a * x[i]` for every lane — the row update both the dense and
/// the packed GEMM microkernels run. The vector form multiplies then
/// adds per lane (no FMA contraction), so it is bit-identical to the
/// scalar loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "slice length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; `x` and `y` are distinct slices of
            // equal length.
            x86::axpy_avx2(a, x.as_ptr(), y.as_mut_ptr(), x.len());
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Sse41 => unsafe {
            // SAFETY: sse4.1 detected (the kernel only needs SSE ops).
            x86::axpy_sse41(a, x.as_ptr(), y.as_mut_ptr(), x.len());
        },
        _ => {
            for (yv, &xv) in y.iter_mut().zip(x) {
                *yv += a * xv;
            }
        }
    }
}

// ---------------------------------------------------------------------
// PackedCodes word pack/unpack (8-bit codes, 8 per u64 word)
// ---------------------------------------------------------------------

/// Pack the low bytes of `codes` into `u64` words (8 codes per word,
/// LSB-first — `PackedCodes`' layout for `width == 8`), appending to
/// `words`. Consumes `codes.len() & !7` codes and returns that count;
/// the caller pushes any tail through the bit-cursor path.
pub fn pack_u8_words(codes: &[u32], words: &mut Vec<u64>) -> usize {
    let full = codes.len() & !7;
    words.reserve(full / 8);
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; each iteration reads 8 in-bounds u32s.
            x86::pack_u8_words_avx2(&codes[..full], words);
        },
        _ => {
            for chunk in codes[..full].chunks_exact(8) {
                let mut w = 0u64;
                for (i, &c) in chunk.iter().enumerate() {
                    w |= ((c & 0xff) as u64) << (8 * i);
                }
                words.push(w);
            }
        }
    }
    full
}

/// Unpack `u64` words holding 8-bit codes (8 per word, LSB-first) into
/// `dst`. `words` must hold at least `dst.len()` codes.
///
/// # Panics
///
/// Panics if `words` holds fewer codes than `dst` expects.
pub fn unpack_u8_words(words: &[u64], dst: &mut [u32]) {
    assert!(words.len() * 8 >= dst.len(), "not enough packed words");
    let full = dst.len() & !7;
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; `full/8 ≤ words.len()` words are
            // read and `full` u32s written in bounds.
            x86::unpack_u8_words_avx2(words, dst.as_mut_ptr(), full);
        },
        _ => {
            for (chunk, &w) in dst[..full].chunks_exact_mut(8).zip(words) {
                for (i, d) in chunk.iter_mut().enumerate() {
                    *d = ((w >> (8 * i)) & 0xff) as u32;
                }
            }
        }
    }
    if full < dst.len() {
        let w = words[full / 8];
        for (i, d) in dst[full..].iter_mut().enumerate() {
            *d = ((w >> (8 * i)) & 0xff) as u32;
        }
    }
}

// ---------------------------------------------------------------------
// Packed-GEMM decode primitives
// ---------------------------------------------------------------------

/// Frozen AdaptivFloat geometry for the algebraic code → f32 decode.
///
/// Valid only inside the `FastQuantizer` envelope (`m ≤ 23`,
/// `exp_bias ≥ −126`, `exp_max ≤ 127`) where every representable value
/// is a normal f32; callers verify the decode against the format's
/// reference codebook before relying on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AfDecode {
    /// Word size in bits.
    pub n: u32,
    /// Mantissa field width (`n − e − 1`).
    pub m: u32,
    /// The tensor's frozen exponent bias.
    pub exp_bias: i32,
}

impl AfDecode {
    /// Decode one `n`-bit AdaptivFloat code to f32, algebraically: the
    /// all-zero magnitude is the paper's custom ±0 assignment (decoded
    /// as +0.0, sign dropped), everything else is a normal f32 rebuilt
    /// field by field.
    #[inline]
    pub fn decode_one(&self, code: u32) -> f32 {
        let sign = (code >> (self.n - 1)) & 1;
        let rest = code & ((1u32 << (self.n - 1)) - 1);
        if rest == 0 {
            return 0.0;
        }
        let exp_field = rest >> self.m;
        let mant = code & ((1u32 << self.m) - 1);
        let biased = (exp_field as i32 + self.exp_bias + 127) as u32;
        f32::from_bits((sign << 31) | (biased << 23) | (mant << (23 - self.m)))
    }
}

/// Decode one-byte-per-code AdaptivFloat codes into `dst`
/// (`codes.len() == dst.len()`), vectorized on AVX2.
pub fn decode_af_u8(d: &AfDecode, codes: &[u8], dst: &mut [f32]) {
    debug_assert_eq!(codes.len(), dst.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; both slices have the same length.
            x86::decode_af_u8_avx2(d, codes.as_ptr(), dst.as_mut_ptr(), dst.len());
        },
        _ => {
            for (dv, &c) in dst.iter_mut().zip(codes) {
                *dv = d.decode_one(c as u32);
            }
        }
    }
}

/// Decode nibble-packed (two codes per byte, low nibble first)
/// AdaptivFloat codes into `dst`; `packed` must hold at least
/// `ceil(dst.len() / 2)` bytes.
pub fn decode_af_u4(d: &AfDecode, packed: &[u8], dst: &mut [f32]) {
    debug_assert!(packed.len() * 2 >= dst.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; each 8-code step reads 4 in-bounds
            // bytes, the scalar tail covers the rest.
            x86::decode_af_u4_avx2(d, packed.as_ptr(), dst.as_mut_ptr(), dst.len());
        },
        _ => decode_af_u4_tail(d, packed, dst, 0),
    }
}

/// Scalar nibble decode from code index `start` (shared tail).
fn decode_af_u4_tail(d: &AfDecode, packed: &[u8], dst: &mut [f32], start: usize) {
    for (i, dv) in dst.iter_mut().enumerate().skip(start) {
        let byte = packed[i / 2];
        let code = if i % 2 == 0 { byte & 0xf } else { byte >> 4 };
        *dv = d.decode_one(code as u32);
    }
}

/// Decode one-byte-per-code uniform (two's-complement i8) codes into
/// `dst` at the plan's frozen `scale`. The vector path converts through
/// f64 exactly like the scalar `(level as f64 * scale) as f32`, so both
/// round identically.
pub fn decode_uniform_u8(scale: f64, codes: &[u8], dst: &mut [f32]) {
    debug_assert_eq!(codes.len(), dst.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; both slices have the same length.
            x86::decode_uniform_u8_avx2(scale, codes.as_ptr(), dst.as_mut_ptr(), dst.len());
        },
        _ => {
            for (dv, &c) in dst.iter_mut().zip(codes) {
                *dv = (c as i8 as f64 * scale) as f32;
            }
        }
    }
}

/// Decode nibble-packed uniform (4-bit two's complement, low nibble
/// first) codes into `dst`; `packed` must hold at least
/// `ceil(dst.len() / 2)` bytes.
pub fn decode_uniform_u4(scale: f64, packed: &[u8], dst: &mut [f32]) {
    debug_assert!(packed.len() * 2 >= dst.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2 detected; each 8-code step reads 4 in-bounds
            // bytes, the scalar tail covers the rest.
            x86::decode_uniform_u4_avx2(scale, packed.as_ptr(), dst.as_mut_ptr(), dst.len());
        },
        _ => decode_uniform_u4_tail(scale, packed, dst, 0),
    }
}

/// Sign-extend a 4-bit two's-complement nibble.
#[inline]
fn sext4(nib: u32) -> i32 {
    (nib as i32 ^ 0x8) - 0x8
}

/// Scalar nibble decode from code index `start` (shared tail).
fn decode_uniform_u4_tail(scale: f64, packed: &[u8], dst: &mut [f32], start: usize) {
    for (i, dv) in dst.iter_mut().enumerate().skip(start) {
        let byte = packed[i / 2];
        let nib = if i % 2 == 0 { byte & 0xf } else { byte >> 4 };
        *dv = (sext4(nib as u32) as f64 * scale) as f32;
    }
}

// ---------------------------------------------------------------------
// x86-64 kernels
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{decode_af_u4_tail, decode_uniform_u4_tail, scan_tail, AfDecode};
    use crate::kernels::FastQuantizer;
    use crate::lut::LutQuantizer;
    use std::arch::x86_64::*;

    const EXP_MASK: u32 = 0x7f80_0000;
    const MANT_MASK: u32 = 0x007f_ffff;
    const ABS_MASK: u32 = 0x7fff_ffff;
    const SIGN_MASK: u32 = 0x8000_0000;

    /// AVX2 FastQuantizer: 8 lanes per step, scalar tail.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `src` and `dst` must each cover `len` valid f32s;
    /// they may alias exactly (in-place) but must not partially overlap.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_avx2(
        fq: &FastQuantizer,
        src: *const f32,
        dst: *mut f32,
        len: usize,
    ) {
        let t_half_min = _mm256_set1_epi32(fq.t_half_min as i32);
        let t_min = _mm256_set1_epi32(fq.t_min as i32);
        let t_max_m1 = _mm256_set1_epi32(fq.t_max.wrapping_sub(1) as i32);
        let vmin = _mm256_set1_epi32(fq.vmin_bits as i32);
        let vmax = _mm256_set1_epi32(fq.vmax_bits as i32);
        let abs_mask = _mm256_set1_epi32(ABS_MASK as i32);
        let sign_mask = _mm256_set1_epi32(SIGN_MASK as i32);
        let exp_mask = _mm256_set1_epi32(EXP_MASK as i32);
        let mant_mask = _mm256_set1_epi32(MANT_MASK as i32);
        let implicit = _mm256_set1_epi32(1 << 23);
        let round = _mm256_set1_epi32(fq.round as i32);
        let shift = _mm_cvtsi32_si128(fq.shift as i32);
        let mut i = 0;
        while i + 8 <= len {
            let bits = _mm256_loadu_si256(src.add(i) as *const __m256i);
            let abs = _mm256_and_si256(bits, abs_mask);
            let sign = _mm256_and_si256(bits, sign_mask);
            // Main path, branch-free (the carry into the exponent is
            // absorbed — see the module docs).
            let sig = _mm256_or_si256(_mm256_and_si256(abs, mant_mask), implicit);
            let q = _mm256_srl_epi32(_mm256_add_epi32(sig, round), shift);
            let main = _mm256_sub_epi32(
                _mm256_add_epi32(_mm256_and_si256(abs, exp_mask), _mm256_sll_epi32(q, shift)),
                implicit,
            );
            let mut r = _mm256_or_si256(sign, main);
            // abs < t_min → ±value_min (underflow-to-zero fixed below).
            let lt_min = _mm256_cmpgt_epi32(t_min, abs);
            r = _mm256_blendv_epi8(r, _mm256_or_si256(sign, vmin), lt_min);
            // abs ≥ t_max → ±value_max (∞ included; NaN fixed below).
            let ge_max = _mm256_cmpgt_epi32(abs, t_max_m1);
            r = _mm256_blendv_epi8(r, _mm256_or_si256(sign, vmax), ge_max);
            // NaN (abs > EXP_MASK) and abs < t_half_min → +0.0.
            let nan = _mm256_cmpgt_epi32(abs, exp_mask);
            let lt_half = _mm256_cmpgt_epi32(t_half_min, abs);
            r = _mm256_andnot_si256(_mm256_or_si256(nan, lt_half), r);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, r);
            i += 8;
        }
        while i < len {
            *dst.add(i) = fq.quantize_one(*src.add(i));
            i += 1;
        }
    }

    /// SSE4.1 FastQuantizer: 4 lanes per step, scalar tail.
    ///
    /// # Safety
    ///
    /// Requires SSE4.1. Same slice contract as [`quantize_avx2`].
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn quantize_sse41(
        fq: &FastQuantizer,
        src: *const f32,
        dst: *mut f32,
        len: usize,
    ) {
        let t_half_min = _mm_set1_epi32(fq.t_half_min as i32);
        let t_min = _mm_set1_epi32(fq.t_min as i32);
        let t_max_m1 = _mm_set1_epi32(fq.t_max.wrapping_sub(1) as i32);
        let vmin = _mm_set1_epi32(fq.vmin_bits as i32);
        let vmax = _mm_set1_epi32(fq.vmax_bits as i32);
        let abs_mask = _mm_set1_epi32(ABS_MASK as i32);
        let sign_mask = _mm_set1_epi32(SIGN_MASK as i32);
        let exp_mask = _mm_set1_epi32(EXP_MASK as i32);
        let mant_mask = _mm_set1_epi32(MANT_MASK as i32);
        let implicit = _mm_set1_epi32(1 << 23);
        let round = _mm_set1_epi32(fq.round as i32);
        let shift = _mm_cvtsi32_si128(fq.shift as i32);
        let mut i = 0;
        while i + 4 <= len {
            let bits = _mm_loadu_si128(src.add(i) as *const __m128i);
            let abs = _mm_and_si128(bits, abs_mask);
            let sign = _mm_and_si128(bits, sign_mask);
            let sig = _mm_or_si128(_mm_and_si128(abs, mant_mask), implicit);
            let q = _mm_srl_epi32(_mm_add_epi32(sig, round), shift);
            let main = _mm_sub_epi32(
                _mm_add_epi32(_mm_and_si128(abs, exp_mask), _mm_sll_epi32(q, shift)),
                implicit,
            );
            let mut r = _mm_or_si128(sign, main);
            let lt_min = _mm_cmpgt_epi32(t_min, abs);
            r = _mm_blendv_epi8(r, _mm_or_si128(sign, vmin), lt_min);
            let ge_max = _mm_cmpgt_epi32(abs, t_max_m1);
            r = _mm_blendv_epi8(r, _mm_or_si128(sign, vmax), ge_max);
            let nan = _mm_cmpgt_epi32(abs, exp_mask);
            let lt_half = _mm_cmpgt_epi32(t_half_min, abs);
            r = _mm_andnot_si128(_mm_or_si128(nan, lt_half), r);
            _mm_storeu_si128(dst.add(i) as *mut __m128i, r);
            i += 4;
        }
        while i < len {
            *dst.add(i) = fq.quantize_one(*src.add(i));
            i += 1;
        }
    }

    /// AVX2 fused max-abs / first-non-finite scan.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_avx2(data: &[f32]) -> (u32, Option<usize>) {
        let abs_mask = _mm256_set1_epi32(ABS_MASK as i32);
        let exp_mask = _mm256_set1_epi32(EXP_MASK as i32);
        let mut maxv = _mm256_setzero_si256();
        let mut first_non_finite = None;
        let ptr = data.as_ptr();
        let len = data.len();
        let mut i = 0;
        while i + 8 <= len {
            let bits = _mm256_loadu_si256(ptr.add(i) as *const __m256i);
            let abs = _mm256_and_si256(bits, abs_mask);
            // Finite lanes: abs < EXP_MASK (all operands ≤ 0x7fffffff,
            // so the signed compare orders them correctly).
            let finite = _mm256_cmpgt_epi32(exp_mask, abs);
            if first_non_finite.is_none() {
                let fin_bits = _mm256_movemask_ps(_mm256_castsi256_ps(finite)) as u32;
                if fin_bits != 0xff {
                    first_non_finite = Some(i + (!fin_bits & 0xff).trailing_zeros() as usize);
                }
            }
            maxv = _mm256_max_epi32(maxv, _mm256_and_si256(abs, finite));
            i += 8;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, maxv);
        let max = lanes.iter().map(|&l| l as u32).max().unwrap_or(0);
        scan_tail(data, i, max, first_non_finite)
    }

    /// AVX2 `y += a·x` (multiply then add per lane — no FMA).
    ///
    /// # Safety
    ///
    /// Requires AVX2. `x` and `y` must each cover `len` valid f32s and
    /// must not overlap.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(a: f32, x: *const f32, y: *mut f32, len: usize) {
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        while i + 8 <= len {
            let xv = _mm256_loadu_ps(x.add(i));
            let yv = _mm256_loadu_ps(y.add(i));
            _mm256_storeu_ps(y.add(i), _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
            i += 8;
        }
        while i < len {
            *y.add(i) += a * *x.add(i);
            i += 1;
        }
    }

    /// SSE `y += a·x` (multiply then add per lane — no FMA).
    ///
    /// # Safety
    ///
    /// Requires SSE4.1 (uses only SSE ops). Same contract as
    /// [`axpy_avx2`].
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn axpy_sse41(a: f32, x: *const f32, y: *mut f32, len: usize) {
        let av = _mm_set1_ps(a);
        let mut i = 0;
        while i + 4 <= len {
            let xv = _mm_loadu_ps(x.add(i));
            let yv = _mm_loadu_ps(y.add(i));
            _mm_storeu_ps(y.add(i), _mm_add_ps(yv, _mm_mul_ps(av, xv)));
            i += 4;
        }
        while i < len {
            *y.add(i) += a * *x.add(i);
            i += 1;
        }
    }

    /// AVX2 LUT gather: sign-folded biased keys, branchless binary
    /// search over the combined threshold table, one final values gather.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `src`/`dst` must each cover `len` valid f32s (they
    /// may alias exactly). `lut.combined` must satisfy the build
    /// invariants: `thresholds_biased.len()` is a power of two and
    /// `values.len() == thresholds_biased.len() + 1`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_avx2(lut: &LutQuantizer, src: *const f32, dst: *mut f32, len: usize) {
        let combined = &lut.combined;
        let th = combined.thresholds_biased.as_ptr() as *const i32;
        let vals = combined.values.as_ptr() as *const i32;
        let p = combined.thresholds_biased.len();
        debug_assert!(p.is_power_of_two());
        debug_assert_eq!(combined.values.len(), p + 1);
        let one = _mm256_set1_epi32(1);
        let mut i = 0;
        while i + 8 <= len {
            let bits = _mm256_loadu_si256(src.add(i) as *const __m256i);
            // Biased key: bits ^ ((bits >>ₐ 31) >>ₗ 1) folds both sign
            // halves into one ascending order, pre-biased for signed
            // compares (see `lut::CombinedLut`).
            let key = _mm256_xor_si256(bits, _mm256_srli_epi32(_mm256_srai_epi32(bits, 31), 1));
            let mut base = _mm256_setzero_si256();
            let mut remaining = p;
            while remaining > 1 {
                let half = remaining / 2;
                let probe = _mm256_add_epi32(base, _mm256_set1_epi32(half as i32 - 1));
                let t = _mm256_i32gather_epi32(th, probe, 4);
                // t ≤ key ⇒ the lane's lower bound moves up by `half`.
                let gt = _mm256_cmpgt_epi32(t, key);
                base = _mm256_add_epi32(
                    base,
                    _mm256_andnot_si256(gt, _mm256_set1_epi32(half as i32)),
                );
                remaining -= half;
            }
            let t = _mm256_i32gather_epi32(th, base, 4);
            let gt = _mm256_cmpgt_epi32(t, key);
            let idx = _mm256_add_epi32(base, _mm256_andnot_si256(gt, one));
            let out = _mm256_i32gather_epi32(vals, idx, 4);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, out);
            i += 8;
        }
        while i < len {
            *dst.add(i) = lut.quantize_one(*src.add(i));
            i += 1;
        }
    }

    /// AVX2 byte-pack: 8 low bytes of 8 u32 codes → one u64 word each.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `codes.len()` must be a multiple of 8.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pack_u8_words_avx2(codes: &[u32], words: &mut Vec<u64>) {
        debug_assert_eq!(codes.len() % 8, 0);
        // Per 128-bit lane: byte 0 of each dword into positions 0..4.
        let shuf = _mm256_setr_epi8(
            0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 4, 8, 12, -1, -1, -1,
            -1, -1, -1, -1, -1, -1, -1, -1, -1,
        );
        for chunk in codes.chunks_exact(8) {
            let v = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            let t = _mm256_shuffle_epi8(v, shuf);
            let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(t)) as u32;
            let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256(t, 1)) as u32;
            words.push((lo as u64) | ((hi as u64) << 32));
        }
    }

    /// AVX2 byte-unpack: one u64 word → 8 u32 codes each.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `words` must hold at least `full / 8` words and
    /// `dst` must cover `full` u32s; `full` is a multiple of 8.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unpack_u8_words_avx2(words: &[u64], dst: *mut u32, full: usize) {
        debug_assert_eq!(full % 8, 0);
        for (wi, &w) in words.iter().take(full / 8).enumerate() {
            let v = _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(w as i64));
            _mm256_storeu_si256(dst.add(wi * 8) as *mut __m256i, v);
        }
    }

    /// Rebuild f32 bit patterns from 8 AdaptivFloat codes in epi32 lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Lanes must hold valid `d.n`-bit codes.
    #[target_feature(enable = "avx2")]
    unsafe fn decode_af_lanes(d: &AfDecode, c: __m256i) -> __m256i {
        let sign = _mm256_slli_epi32(_mm256_srl_epi32(c, _mm_cvtsi32_si128(d.n as i32 - 1)), 31);
        let rest = _mm256_and_si256(c, _mm256_set1_epi32(((1u32 << (d.n - 1)) - 1) as i32));
        let zero = _mm256_cmpeq_epi32(rest, _mm256_setzero_si256());
        let exp_field = _mm256_srl_epi32(rest, _mm_cvtsi32_si128(d.m as i32));
        let mant = _mm256_and_si256(c, _mm256_set1_epi32(((1u32 << d.m) - 1) as i32));
        let biased = _mm256_add_epi32(exp_field, _mm256_set1_epi32(d.exp_bias + 127));
        let r = _mm256_or_si256(
            _mm256_or_si256(sign, _mm256_slli_epi32(biased, 23)),
            _mm256_sll_epi32(mant, _mm_cvtsi32_si128(23 - d.m as i32)),
        );
        _mm256_andnot_si256(zero, r)
    }

    /// AVX2 AdaptivFloat byte-code decode.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `codes` and `dst` must each cover `len` elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_af_u8_avx2(
        d: &AfDecode,
        codes: *const u8,
        dst: *mut f32,
        len: usize,
    ) {
        let mut i = 0;
        while i + 8 <= len {
            let c = _mm256_cvtepu8_epi32(_mm_loadl_epi64(codes.add(i) as *const __m128i));
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, decode_af_lanes(d, c));
            i += 8;
        }
        while i < len {
            *dst.add(i) = d.decode_one(*codes.add(i) as u32);
            i += 1;
        }
    }

    /// Spread the 8 nibbles of a dword (low nibble first) into epi32 lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn nibbles_to_lanes(dword: u32) -> __m256i {
        let v = _mm256_set1_epi32(dword as i32);
        let shifts = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
        _mm256_and_si256(_mm256_srlv_epi32(v, shifts), _mm256_set1_epi32(0xf))
    }

    /// AVX2 AdaptivFloat nibble-code decode (scalar tail for the odd end).
    ///
    /// # Safety
    ///
    /// Requires AVX2. `packed` must hold `ceil(len / 2)` bytes and `dst`
    /// must cover `len` f32s.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_af_u4_avx2(
        d: &AfDecode,
        packed: *const u8,
        dst: *mut f32,
        len: usize,
    ) {
        let full = len & !7;
        let mut i = 0;
        while i < full {
            let dword = (packed.add(i / 2) as *const u32).read_unaligned();
            let c = nibbles_to_lanes(dword);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, decode_af_lanes(d, c));
            i += 8;
        }
        let packed = std::slice::from_raw_parts(packed, len.div_ceil(2));
        let dst = std::slice::from_raw_parts_mut(dst, len);
        decode_af_u4_tail(d, packed, dst, full);
    }

    /// Multiply 8 epi32 levels by an f64 scale and narrow to f32,
    /// matching the scalar `(level as f64 * scale) as f32` exactly
    /// (both convert and round through f64 with ties-to-even).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn scale_levels(levels: __m256i, scale: __m256d) -> __m256 {
        let lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(levels));
        let hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(levels, 1));
        let f_lo = _mm256_cvtpd_ps(_mm256_mul_pd(lo, scale));
        let f_hi = _mm256_cvtpd_ps(_mm256_mul_pd(hi, scale));
        _mm256_set_m128(f_hi, f_lo)
    }

    /// AVX2 uniform byte-code decode.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `codes` and `dst` must each cover `len` elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_uniform_u8_avx2(
        scale: f64,
        codes: *const u8,
        dst: *mut f32,
        len: usize,
    ) {
        let sv = _mm256_set1_pd(scale);
        let mut i = 0;
        while i + 8 <= len {
            let levels = _mm256_cvtepi8_epi32(_mm_loadl_epi64(codes.add(i) as *const __m128i));
            _mm256_storeu_ps(dst.add(i), scale_levels(levels, sv));
            i += 8;
        }
        while i < len {
            *dst.add(i) = (*codes.add(i) as i8 as f64 * scale) as f32;
            i += 1;
        }
    }

    /// AVX2 uniform nibble-code decode.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `packed` must hold `ceil(len / 2)` bytes and `dst`
    /// must cover `len` f32s.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_uniform_u4_avx2(
        scale: f64,
        packed: *const u8,
        dst: *mut f32,
        len: usize,
    ) {
        let sv = _mm256_set1_pd(scale);
        let eight = _mm256_set1_epi32(8);
        let full = len & !7;
        let mut i = 0;
        while i < full {
            let dword = (packed.add(i / 2) as *const u32).read_unaligned();
            let nibs = nibbles_to_lanes(dword);
            // 4-bit sign extension: (x ^ 8) − 8.
            let levels = _mm256_sub_epi32(_mm256_xor_si256(nibs, eight), eight);
            _mm256_storeu_ps(dst.add(i), scale_levels(levels, sv));
            i += 8;
        }
        let packed = std::slice::from_raw_parts(packed, len.div_ceil(2));
        let dst = std::slice::from_raw_parts_mut(dst, len);
        decode_uniform_u4_tail(scale, packed, dst, full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_consistent() {
        let r = report();
        assert_eq!(r.lanes, r.isa.lanes());
        if r.forced_scalar {
            assert_eq!(r.isa, Isa::Scalar);
        }
        let json = r.to_json();
        assert!(json.contains("\"isa\""), "{json}");
        assert!(json.contains(r.isa.label()), "{json}");
    }

    #[test]
    fn scan_matches_scalar_twin() {
        let mut data: Vec<f32> = (0..67).map(|i| (i as f32 - 31.0) * 0.73).collect();
        assert_eq!(scan_abs(&data), scan_abs_scalar(&data));
        data[40] = f32::NAN;
        data[9] = f32::NEG_INFINITY;
        assert_eq!(scan_abs(&data), scan_abs_scalar(&data));
        assert_eq!(scan_abs(&data).1, Some(9));
        assert_eq!(scan_abs(&[]), (0, None));
    }

    #[test]
    fn axpy_matches_scalar_loop() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let mut y: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        let mut want = y.clone();
        for (w, &xv) in want.iter_mut().zip(&x) {
            *w += 1.37 * xv;
        }
        axpy(1.37, &x, &mut y);
        let got: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_unpack_words_roundtrip() {
        let codes: Vec<u32> = (0..83).map(|i| (i * 37) & 0xff).collect();
        let mut words = Vec::new();
        let consumed = pack_u8_words(&codes, &mut words);
        assert_eq!(consumed, 80);
        assert_eq!(words.len(), 10);
        let mut back = vec![0u32; consumed];
        unpack_u8_words(&words, &mut back);
        assert_eq!(back, codes[..consumed]);
    }
}
