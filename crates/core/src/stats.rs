//! Tensor distribution statistics (Figure 1 of the paper: weight-range
//! spreads across model families).

/// Summary statistics of a tensor's value distribution.
///
/// # Examples
///
/// ```
/// use adaptivfloat::TensorStats;
///
/// let stats = TensorStats::from_slice(&[-2.0, 0.0, 1.0, 3.0]);
/// assert_eq!(stats.min, -2.0);
/// assert_eq!(stats.max, 3.0);
/// assert_eq!(stats.abs_max, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorStats {
    /// Smallest value.
    pub min: f32,
    /// Largest value.
    pub max: f32,
    /// Largest absolute value.
    pub abs_max: f32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Excess kurtosis (0 for a Gaussian); large values flag the heavy
    /// tails the paper observes in layer-norm NLP models.
    pub kurtosis: f64,
    /// Number of elements summarized.
    pub count: usize,
}

impl TensorStats {
    /// Compute statistics over a slice. An empty slice yields all-zero
    /// statistics with `count == 0`.
    pub fn from_slice(data: &[f32]) -> Self {
        if data.is_empty() {
            return TensorStats {
                min: 0.0,
                max: 0.0,
                abs_max: 0.0,
                mean: 0.0,
                std: 0.0,
                kurtosis: 0.0,
                count: 0,
            };
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
        }
        let n = data.len() as f64;
        let mean = sum / n;
        let mut m2 = 0.0f64;
        let mut m4 = 0.0f64;
        for &v in data {
            let d = v as f64 - mean;
            let d2 = d * d;
            m2 += d2;
            m4 += d2 * d2;
        }
        m2 /= n;
        m4 /= n;
        let kurtosis = if m2 > 0.0 { m4 / (m2 * m2) - 3.0 } else { 0.0 };
        TensorStats {
            min,
            max,
            abs_max: min.abs().max(max.abs()),
            mean,
            std: m2.sqrt(),
            kurtosis,
            count: data.len(),
        }
    }

    /// The `p`-th percentile of |values| (0 ≤ p ≤ 100) — useful for
    /// percentile-clipped exponent-bias ablations.
    ///
    /// Returns `0.0` for an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn abs_percentile(data: &[f32], p: f64) -> f32 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if data.is_empty() {
            return 0.0;
        }
        let mut abs: Vec<f32> = data.iter().map(|v| v.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let idx = ((p / 100.0) * (abs.len() - 1) as f64).round() as usize;
        abs[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let stats = TensorStats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.mean, 2.5);
        assert!((stats.std - 1.1180).abs() < 1e-3);
        assert_eq!(stats.count, 4);
    }

    #[test]
    fn empty_slice() {
        let stats = TensorStats::from_slice(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.abs_max, 0.0);
    }

    #[test]
    fn kurtosis_flags_heavy_tails() {
        // A spiky distribution (many zeros, one huge outlier) has large
        // excess kurtosis; a uniform grid has negative excess kurtosis.
        let mut spiky = vec![0.01f32; 999];
        spiky.push(100.0);
        let uniform: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        let k_spiky = TensorStats::from_slice(&spiky).kurtosis;
        let k_uniform = TensorStats::from_slice(&uniform).kurtosis;
        assert!(k_spiky > 100.0, "spiky kurtosis {k_spiky}");
        assert!(k_uniform < 0.0, "uniform kurtosis {k_uniform}");
    }

    #[test]
    fn abs_max_uses_both_signs() {
        let stats = TensorStats::from_slice(&[-5.0, 2.0]);
        assert_eq!(stats.abs_max, 5.0);
    }

    #[test]
    fn percentile_endpoints() {
        let data = [3.0f32, -1.0, 2.0, -4.0];
        assert_eq!(TensorStats::abs_percentile(&data, 100.0), 4.0);
        assert_eq!(TensorStats::abs_percentile(&data, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        TensorStats::abs_percentile(&[1.0], 101.0);
    }

    #[test]
    fn constant_tensor_zero_std_and_kurtosis() {
        let stats = TensorStats::from_slice(&[2.0; 64]);
        assert_eq!(stats.std, 0.0);
        assert_eq!(stats.kurtosis, 0.0);
    }
}
