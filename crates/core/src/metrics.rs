//! Quantization-error metrics used by the paper's Figure 4 evaluation.

/// Root-mean-square error between a reference tensor and its quantized
/// rendering — the per-layer statistic of the paper's Figure 4.
///
/// Returns `0.0` for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use adaptivfloat::rms_error;
///
/// let err = rms_error(&[1.0, 2.0], &[1.0, 2.5]);
/// assert!((err - 0.3535).abs() < 1e-3);
/// ```
pub fn rms_error(reference: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(
        reference.len(),
        quantized.len(),
        "length mismatch: {} vs {}",
        reference.len(),
        quantized.len()
    );
    if reference.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = reference
        .iter()
        .zip(quantized)
        .map(|(&r, &q)| {
            let d = (r - q) as f64;
            d * d
        })
        .sum();
    (sum_sq / reference.len() as f64).sqrt()
}

/// Maximum absolute elementwise error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_error(reference: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(reference.len(), quantized.len(), "length mismatch");
    reference
        .iter()
        .zip(quantized)
        .map(|(&r, &q)| ((r - q) as f64).abs())
        .fold(0.0, f64::max)
}

/// Mean absolute elementwise error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_abs_error(reference: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(reference.len(), quantized.len(), "length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let sum: f64 = reference
        .iter()
        .zip(quantized)
        .map(|(&r, &q)| ((r - q) as f64).abs())
        .sum();
    sum / reference.len() as f64
}

/// Signal-to-quantization-noise ratio in dB:
/// `10 · log10(Σ r² / Σ (r − q)²)`.
///
/// Returns `f64::INFINITY` when the quantization is exact and
/// `f64::NEG_INFINITY` when the reference signal is all-zero but the
/// error is not.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sqnr_db(reference: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(reference.len(), quantized.len(), "length mismatch");
    let signal: f64 = reference.iter().map(|&r| (r as f64) * (r as f64)).sum();
    let noise: f64 = reference
        .iter()
        .zip(quantized)
        .map(|(&r, &q)| {
            let d = (r - q) as f64;
            d * d
        })
        .sum();
    if noise == 0.0 {
        return f64::INFINITY;
    }
    if signal == 0.0 {
        return f64::NEG_INFINITY;
    }
    10.0 * (signal / noise).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_identical_is_zero() {
        let x = [1.0f32, -2.0, 3.5];
        assert_eq!(rms_error(&x, &x), 0.0);
    }

    #[test]
    fn rms_known_value() {
        // errors: 1 and -1 → rms = 1.
        assert_eq!(rms_error(&[0.0, 0.0], &[1.0, -1.0]), 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(rms_error(&[], &[]), 0.0);
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
        assert_eq!(max_abs_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        rms_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sqnr_exact_is_infinite() {
        let x = [1.0f32, 2.0];
        assert_eq!(sqnr_db(&x, &x), f64::INFINITY);
    }

    #[test]
    fn sqnr_ordering_matches_error_ordering() {
        let x = [1.0f32, -1.0, 0.5, 2.0];
        let close = [1.01f32, -0.99, 0.5, 2.0];
        let far = [1.3f32, -0.7, 0.2, 2.4];
        assert!(sqnr_db(&x, &close) > sqnr_db(&x, &far));
    }

    #[test]
    fn max_and_mean_abs() {
        let r = [0.0f32, 0.0, 0.0, 0.0];
        let q = [1.0f32, -3.0, 0.0, 2.0];
        assert_eq!(max_abs_error(&r, &q), 3.0);
        assert_eq!(mean_abs_error(&r, &q), 1.5);
    }
}
