//! Representable-value enumeration across formats — the machinery behind
//! the paper's Figure 2 (zero assignment) and Figure 3 (the <4,2> grid).

use crate::format::NumberFormat;
use crate::{AdaptivFloat, IeeeLikeFloat, Posit};

/// A side-by-side rendering of two value grids, used to reproduce the
/// paper's Figure 2: a float without denormals keeps ±min but has no zero;
/// AdaptivFloat sacrifices ±min for ±0.
#[derive(Debug, Clone, PartialEq)]
pub struct GridComparison {
    /// Description of the left grid.
    pub left_label: String,
    /// Values of the left grid, ascending.
    pub left: Vec<f32>,
    /// Description of the right grid.
    pub right_label: String,
    /// Values of the right grid, ascending.
    pub right: Vec<f32>,
}

/// Build the paper's Figure 2 comparison for an `<n, e>` geometry at a
/// given exponent bias: "floating points w/o denormals" (keeps the
/// `2^bias` slots, has no zero) vs. AdaptivFloat (trades ±`2^bias` for ±0).
///
/// # Panics
///
/// Panics if the geometry is invalid for [`AdaptivFloat::new`].
///
/// # Examples
///
/// ```
/// use adaptivfloat::table::figure2_comparison;
///
/// let cmp = figure2_comparison(4, 2, -2);
/// assert!(!cmp.left.contains(&0.0));   // no zero without the trick
/// assert!(cmp.right.contains(&0.0));   // AdaptivFloat has exact zero
/// assert!(cmp.left.contains(&0.25));   // ±min kept on the left
/// assert!(!cmp.right.contains(&0.25)); // ±min sacrificed on the right
/// ```
pub fn figure2_comparison(n: u32, e: u32, exp_bias: i32) -> GridComparison {
    let fmt = AdaptivFloat::new(n, e).expect("valid geometry");
    let params = fmt.params_with_bias(exp_bias);
    let right = fmt.representable_values(&params);
    // The "no denormals, no zero trick" grid: every (exp, mant) pair.
    let m = fmt.mantissa_bits();
    let mut left = Vec::new();
    for exp_field in 0..(1u32 << e) {
        for mant_field in 0..(1u32 << m) {
            let exp = exp_bias + exp_field as i32;
            let mant = 1.0 + mant_field as f64 / (m as f64).exp2();
            let v = ((exp as f64).exp2() * mant) as f32;
            left.push(v);
            left.push(-v);
        }
    }
    left.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    GridComparison {
        left_label: "floating points w/o denormals".to_string(),
        left,
        right_label: "AdaptivFloat (sacrifice ±min for ±0)".to_string(),
        right,
    }
}

/// Enumerate the positive representable values of the three float-like
/// formats at matched word size, for density/coverage comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Format name.
    pub name: String,
    /// Smallest positive representable magnitude.
    pub min_pos: f64,
    /// Largest representable magnitude.
    pub max_pos: f64,
    /// Number of distinct non-negative values.
    pub levels: usize,
}

/// Coverage of AdaptivFloat (at a given bias), IEEE-like float, and posit
/// at the same word size.
///
/// # Panics
///
/// Panics if any geometry is invalid (e.g. `n < 4`).
pub fn coverage(
    n: u32,
    adaptiv_e: u32,
    float_e: u32,
    posit_es: u32,
    exp_bias: i32,
) -> Vec<CoverageReport> {
    let af = AdaptivFloat::new(n, adaptiv_e).expect("valid adaptivfloat");
    let params = af.params_with_bias(exp_bias);
    let af_vals = af.representable_values(&params);
    let fl = IeeeLikeFloat::new(n, float_e).expect("valid float");
    let fl_vals = fl.representable_values();
    let po = Posit::new(n, posit_es).expect("valid posit");
    let po_vals = po.representable_values();
    let report = |name: String, vals: &[f32]| {
        let pos: Vec<f64> = vals
            .iter()
            .filter(|&&v| v > 0.0)
            .map(|&v| v as f64)
            .collect();
        CoverageReport {
            name,
            min_pos: pos.first().copied().unwrap_or(0.0),
            max_pos: pos.last().copied().unwrap_or(0.0),
            levels: vals.iter().filter(|&&v| v >= 0.0).count(),
        }
    };
    vec![
        report(af.name(), &af_vals),
        report(fl.name(), &fl_vals),
        report(po.name(), &po_vals),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_matches_paper_grids() {
        let cmp = figure2_comparison(4, 2, -2);
        // Left: ±{0.25, 0.375, 0.5, 0.75, 1, 1.5, 2, 3}, 16 values, no 0.
        assert_eq!(cmp.left.len(), 16);
        assert!(cmp.left.contains(&0.375) && cmp.left.contains(&-0.25));
        // Right: same minus ±0.25 plus a single 0 → 15 values.
        assert_eq!(cmp.right.len(), 15);
        assert!(cmp.right.contains(&3.0) && cmp.right.contains(&-3.0));
    }

    #[test]
    fn coverage_ordering() {
        let reports = coverage(8, 3, 4, 1, -8);
        assert_eq!(reports.len(), 3);
        // Posit has by far the widest dynamic range at 8 bits.
        let posit = &reports[2];
        let float = &reports[1];
        assert!(posit.max_pos > float.max_pos);
        // All formats offer 2^(n−1) non-negative levels (±0 collapsed,
        // posit loses one slot to NaR's absence on the negative side only).
        for r in &reports {
            assert_eq!(r.levels, 128, "{}", r.name);
        }
    }
}
