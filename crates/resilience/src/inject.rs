//! Injection adapters: apply a [`FaultMap`] to the storage surfaces a
//! deployed accelerator exposes — packed sub-byte code buffers
//! (unprotected or behind SEC-DED parity), unpacked code words, and raw
//! f32 tensors.
//!
//! Two granularities exist. The word-level adapters ([`inject_packed`],
//! [`inject_codes`], [`inject_f32`]) sample one event per *code word*.
//! The bit-level adapters ([`inject_packed_bits`],
//! [`inject_protected_bits`]) sample the map at **width 1 over every
//! stored bit**, so a campaign rate is a true per-bit BER and multiple
//! independent hits can land in the same storage word — the regime
//! where SEC-DED's double-bit detection matters.

use crate::ecc::CODEWORD_BITS;
use crate::fault::{FaultMap, FaultSpec};
use crate::protected::ProtectedCodes;
use adaptivfloat::PackedCodes;

/// Corrupt a packed code buffer in place according to `map` (sampled at
/// the buffer's width). Returns the number of words struck. A map from
/// a zero-rate spec is empty, making this a guaranteed no-op.
///
/// # Panics
///
/// Panics if the map's width differs from the buffer's width or an
/// event index is out of bounds.
pub fn inject_packed(codes: &mut PackedCodes, map: &FaultMap) -> usize {
    assert_eq!(
        map.width(),
        codes.width(),
        "fault map width {} vs packed width {}",
        map.width(),
        codes.width()
    );
    for ev in map.events() {
        let word = codes.get(ev.index);
        codes.set(ev.index, ev.apply(word));
    }
    map.len()
}

/// Corrupt a slice of unpacked `width`-bit code words in place.
/// Returns the number of words struck.
///
/// # Panics
///
/// Panics if an event index is out of bounds, or the map was sampled at
/// a width above 32.
pub fn inject_codes(codes: &mut [u32], map: &FaultMap) -> usize {
    assert!(map.width() <= 32, "u32 code words cap the width at 32");
    for ev in map.events() {
        codes[ev.index] = ev.apply(codes[ev.index] as u64) as u32;
    }
    map.len()
}

/// Corrupt a raw f32 tensor in place, striking the IEEE-754 bit
/// patterns themselves (the FP32 baseline of a fault campaign).
/// Returns the number of elements struck.
///
/// # Panics
///
/// Panics if the map was not sampled at width 32 or an event index is
/// out of bounds.
pub fn inject_f32(data: &mut [f32], map: &FaultMap) -> usize {
    assert_eq!(
        map.width(),
        32,
        "f32 fault maps must be sampled at width 32"
    );
    for ev in map.events() {
        data[ev.index] = f32::from_bits(ev.apply(data[ev.index].to_bits() as u64) as u32);
    }
    map.len()
}

/// Convenience: sample `spec` for the buffer and inject in one step.
/// Returns the number of words struck.
pub fn inject_packed_with(codes: &mut PackedCodes, spec: &FaultSpec) -> usize {
    let map = spec.sample(codes.len(), codes.width());
    inject_packed(codes, &map)
}

/// Corrupt an unprotected packed buffer at *bit* granularity: `map`
/// must be sampled at width 1 over `codes.len() × codes.width()`
/// elements, each element being one stored bit (element `i` is bit
/// `i % width` of code `i / width`). Returns the number of bits struck.
///
/// # Panics
///
/// Panics if the map's width is not 1 or an event index addresses a bit
/// past the last code.
pub fn inject_packed_bits(codes: &mut PackedCodes, map: &FaultMap) -> usize {
    assert_eq!(map.width(), 1, "bit-level maps are sampled at width 1");
    let width = codes.width() as usize;
    for ev in map.events() {
        let (code, bit) = (ev.index / width, (ev.index % width) as u32);
        let old = codes.get(code) >> bit & 1;
        let new = ev.apply(old) & 1;
        if new != old {
            codes.flip_bits(code, 1u64 << bit);
        }
    }
    map.len()
}

/// Corrupt SEC-DED protected storage at *bit* granularity, striking
/// data and parity bits alike: `map` must be sampled at width 1 over
/// `codes.raw_words() ×` [`CODEWORD_BITS`] elements (element `i` is raw
/// bit `i % 72` — bits 64..72 being parity — of word `i / 72`).
/// Returns the number of bits struck.
///
/// # Panics
///
/// Panics if the map's width is not 1 or an event index addresses a bit
/// past the last protected word.
pub fn inject_protected_bits(codes: &mut ProtectedCodes, map: &FaultMap) -> usize {
    assert_eq!(map.width(), 1, "bit-level maps are sampled at width 1");
    let per_word = CODEWORD_BITS as usize;
    for ev in map.events() {
        let (word, bit) = (ev.index / per_word, (ev.index % per_word) as u32);
        let old = u64::from(codes.raw_bit(word, bit));
        codes.set_raw_bit(word, bit, ev.apply(old) & 1 == 1);
    }
    map.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn packed(width: u32, n: usize) -> PackedCodes {
        let mut p = PackedCodes::new(width);
        for i in 0..n {
            p.push(i as u64);
        }
        p
    }

    #[test]
    fn zero_rate_injection_is_a_noop() {
        let mut p = packed(7, 300);
        let clean = p.clone();
        let struck = inject_packed_with(&mut p, &FaultSpec::single_bit(0.0, 123));
        assert_eq!(struck, 0);
        assert_eq!(p, clean, "zero-fault campaign must be bit-identical");

        let mut raw = vec![1.5f32; 64];
        let map = FaultSpec::single_bit(0.0, 9).sample(raw.len(), 32);
        assert_eq!(inject_f32(&mut raw, &map), 0);
        assert!(raw.iter().all(|&v| v.to_bits() == 1.5f32.to_bits()));
    }

    #[test]
    fn packed_and_unpacked_agree() {
        // The same map applied to packed storage and to the unpacked
        // word array must corrupt identically.
        let width = 6;
        let mut p = packed(width, 200);
        let mut words: Vec<u32> = p.iter().map(|c| c as u32).collect();
        let map = FaultSpec::single_bit(0.2, 77).sample(200, width);
        let a = inject_packed(&mut p, &map);
        let b = inject_codes(&mut words, &map);
        assert_eq!(a, b);
        assert!(a > 0, "rate 0.2 over 200 words should strike");
        let repacked: Vec<u32> = p.iter().map(|c| c as u32).collect();
        assert_eq!(repacked, words);
    }

    #[test]
    fn single_bit_injection_flips_exactly_one_bit() {
        let mut p = packed(8, 100);
        let before: Vec<u64> = p.iter().collect();
        let map = FaultSpec::single_bit(1.0, 4).sample(100, 8);
        inject_packed(&mut p, &map);
        for (i, &b) in before.iter().enumerate() {
            assert_eq!((p.get(i) ^ b).count_ones(), 1, "word {i}");
        }
    }

    #[test]
    fn f32_injection_can_manufacture_nonfinites() {
        // Stuck-at-1 on f32 exponent bits eventually yields Inf/NaN —
        // the hazard the hardened decode exists for.
        let mut data = vec![1.0f32; 4096];
        let spec = FaultSpec {
            kind: FaultKind::MultiBit { flips: 8 },
            rate: 1.0,
            seed: 21,
        };
        let map = spec.sample(data.len(), 32);
        inject_f32(&mut data, &map);
        assert!(
            data.iter().any(|v| !v.is_finite()),
            "8-bit upsets on 4096 f32s should produce at least one non-finite"
        );
    }

    #[test]
    fn bit_level_injection_hits_true_ber() {
        // Bit-level maps treat every stored bit as its own element, so
        // a rate is a per-bit BER and total flips ≈ rate × total bits.
        let mut p = packed(4, 4096);
        let clean = p.clone();
        let total_bits = p.len() * 4;
        let map = FaultSpec::single_bit(0.05, 31).sample(total_bits, 1);
        let struck = inject_packed_bits(&mut p, &map);
        assert!(struck > 0);
        let flipped: u32 = clean
            .iter()
            .zip(p.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped as usize, struck, "each event flips one bit");
        let rate = struck as f64 / total_bits as f64;
        assert!((rate - 0.05).abs() < 0.01, "empirical BER {rate}");
    }

    #[test]
    fn protected_injection_strikes_data_and_parity() {
        use crate::ecc::CODEWORD_BITS;
        use crate::protected::ProtectedCodes;
        let mut prot = ProtectedCodes::protect(packed(8, 2048));
        let clean = prot.clone();
        let total = prot.raw_words() * CODEWORD_BITS as usize;
        let map = FaultSpec::single_bit(0.02, 97).sample(total, 1);
        let struck = inject_protected_bits(&mut prot, &map);
        assert!(struck > 0);
        let data_flips: u32 = clean
            .codes()
            .words()
            .iter()
            .zip(prot.codes().words())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        let parity_flips: u32 = clean
            .parity()
            .iter()
            .zip(prot.parity())
            .map(|(a, b)| u32::from(a ^ b).count_ones())
            .sum();
        assert_eq!((data_flips + parity_flips) as usize, struck);
        assert!(data_flips > 0, "data bits must be targetable");
        assert!(parity_flips > 0, "parity bits must be targetable");
        // At this BER most words carry 0–1 flips: the scrub repairs the
        // singles and reports the rest uncorrectable, never panicking.
        let report = prot.scrub();
        assert!(report.corrected > 0);
        assert_eq!(
            prot.stats().corrected,
            report.corrected as u64,
            "stats track the sweep"
        );
    }

    #[test]
    fn deterministic_across_injection_order() {
        // Injecting the same map into two copies gives identical buffers.
        let map = FaultSpec::single_bit(0.3, 55).sample(150, 5);
        let mut a = packed(5, 150);
        let mut b = packed(5, 150);
        inject_packed(&mut a, &map);
        inject_packed(&mut b, &map);
        assert_eq!(a, b);
    }
}
