//! SEC-DED codec: extended Hamming(72,64) over `u64` storage words.
//!
//! This is the standard accelerator SRAM/DRAM protection scheme — 8
//! check bits per 64 data bits — that the paper's hardware section
//! presumes under its weight buffers. Each stored word gets a parity
//! byte: seven Hamming check bits (positions 1, 2, 4, …, 64 of the
//! 72-bit codeword) plus one overall-parity bit. Decoding then
//! **corrects any single-bit error** (in data *or* parity) and
//! **detects any double-bit error** as uncorrectable:
//!
//! | syndrome | overall parity | verdict                          |
//! |----------|----------------|----------------------------------|
//! | zero     | even           | clean                            |
//! | nonzero  | odd            | single-bit error → corrected     |
//! | zero     | odd            | overall-parity bit → corrected   |
//! | nonzero  | even           | double-bit error → uncorrectable |
//!
//! [`ProtectedCodes`](crate::ProtectedCodes) wraps a whole packed code
//! buffer in this codec; the word-level API here is what its scrubber
//! and property tests exercise directly.

/// Number of parity bits per protected 64-bit word (7 Hamming check
/// bits + 1 overall-parity bit).
pub const PARITY_BITS: u32 = 8;

/// Total stored bits per protected word: 64 data + [`PARITY_BITS`].
pub const CODEWORD_BITS: u32 = 64 + PARITY_BITS;

/// Number of Hamming check bits (syndrome width).
const CHECKS: usize = 7;

/// Highest valid codeword position (positions are 1-based; 71 = 64 data
/// positions + 7 check positions).
const MAX_POS: u64 = 71;

/// Codeword positions (1-based) of the 64 data bits: every position in
/// `1..=71` that is not a power of two. Data bit `i` of the stored
/// `u64` lives at codeword position `DATA_POS[i]`.
const DATA_POS: [u8; 64] = {
    let mut arr = [0u8; 64];
    let mut pos = 1usize;
    let mut i = 0usize;
    while i < 64 {
        if pos & (pos - 1) != 0 {
            arr[i] = pos as u8;
            i += 1;
        }
        pos += 1;
    }
    arr
};

/// `CHECK_MASKS[k]` selects the data bits whose codeword position has
/// bit `k` set — check bit `k` is the even parity over that subset.
const CHECK_MASKS: [u64; CHECKS] = {
    let mut masks = [0u64; CHECKS];
    let mut i = 0usize;
    while i < 64 {
        let pos = DATA_POS[i] as usize;
        let mut k = 0usize;
        while k < CHECKS {
            if pos & (1 << k) != 0 {
                masks[k] |= 1u64 << i;
            }
            k += 1;
        }
        i += 1;
    }
    masks
};

/// Reverse map: codeword position → data bit index (`-1` for check-bit
/// positions and position 0, which does not exist).
const POS_TO_DATA: [i8; 72] = {
    let mut map = [-1i8; 72];
    let mut i = 0usize;
    while i < 64 {
        map[DATA_POS[i] as usize] = i as i8;
        i += 1;
    }
    map
};

/// Compute the parity byte protecting `data`: bits 0–6 are the Hamming
/// check bits, bit 7 makes the overall ones-count of the 72-bit
/// codeword even.
pub fn encode_word(data: u64) -> u8 {
    let mut parity = 0u8;
    for (k, mask) in CHECK_MASKS.iter().enumerate() {
        parity |= (((data & mask).count_ones() & 1) as u8) << k;
    }
    let overall = (data.count_ones() + u32::from(parity).count_ones()) & 1;
    parity | ((overall as u8) << 7)
}

/// The verdict of decoding one protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordDecode {
    /// No error: the stored data is trustworthy as-is.
    Clean,
    /// A single data bit was flipped; this is the corrected data word.
    CorrectedData(u64),
    /// A single parity bit was flipped (data is fine); this is the
    /// corrected parity byte.
    CorrectedParity(u8),
    /// Two or more bits flipped: detected but not correctable. The data
    /// word cannot be trusted.
    Uncorrectable,
}

/// Check `data` against its stored `parity` byte, correcting a
/// single-bit error or flagging a double-bit error (see the module
/// table for the full case analysis).
pub fn decode_word(data: u64, parity: u8) -> WordDecode {
    let expected = encode_word(data);
    // Syndrome: XOR of stored vs recomputed check bits = the codeword
    // position of a single-bit error (0 = checks agree).
    let syndrome = u64::from((parity ^ expected) & 0x7F);
    // Overall parity over all 72 stored bits; even means consistent.
    let overall_odd = (data.count_ones() + u32::from(parity).count_ones()) & 1 == 1;
    match (syndrome, overall_odd) {
        (0, false) => WordDecode::Clean,
        // Syndrome zero but overall odd: the overall-parity bit itself
        // flipped. Data and check bits are fine.
        (0, true) => WordDecode::CorrectedParity(parity ^ 0x80),
        (s, true) => {
            if s & (s - 1) == 0 {
                // Power-of-two position: a stored check bit flipped.
                WordDecode::CorrectedParity(parity ^ (1 << s.trailing_zeros()))
            } else if s <= MAX_POS {
                let i = POS_TO_DATA[s as usize];
                debug_assert!(i >= 0, "non-power-of-two position {s} must hold data");
                WordDecode::CorrectedData(data ^ (1u64 << i))
            } else {
                // Positions 72..127 do not exist in the codeword: only a
                // multi-bit error can synthesize such a syndrome.
                WordDecode::Uncorrectable
            }
        }
        // Nonzero syndrome with even overall parity: an even number of
        // bits (≥ 2) flipped — detected, not correctable.
        (_, false) => WordDecode::Uncorrectable,
    }
}

/// Cumulative ECC health counters for a protected store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Single-bit errors corrected (data or parity).
    pub corrected: u64,
    /// Double-bit (or worse) errors detected but not correctable.
    pub detected_uncorrectable: u64,
    /// Completed scrub sweeps over the store.
    pub scrub_passes: u64,
}

impl EccStats {
    /// Merge another counter set into this one (summing fields).
    pub fn absorb(&mut self, other: &EccStats) {
        self.corrected += other.corrected;
        self.detected_uncorrectable += other.detected_uncorrectable;
        self.scrub_passes += other.scrub_passes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_positions_are_the_64_non_powers_of_two() {
        assert!(DATA_POS.windows(2).all(|w| w[0] < w[1]), "sorted");
        for &p in &DATA_POS {
            let p = p as u64;
            assert!((1..=MAX_POS).contains(&p));
            assert!(p & (p - 1) != 0, "position {p} is a power of two");
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            let p = encode_word(data);
            assert_eq!(decode_word(data, p), WordDecode::Clean, "data {data:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_flip_corrects() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let p = encode_word(data);
        for bit in 0..64 {
            let struck = data ^ (1u64 << bit);
            assert_eq!(
                decode_word(struck, p),
                WordDecode::CorrectedData(data),
                "data bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_parity_bit_flip_corrects() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let p = encode_word(data);
        for bit in 0..PARITY_BITS {
            let struck = p ^ (1 << bit);
            assert_eq!(
                decode_word(data, struck),
                WordDecode::CorrectedParity(p),
                "parity bit {bit}"
            );
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected_uncorrectable() {
        // All C(72,2) = 2556 double flips over one word.
        let data = 0x1122_3344_5566_7788u64;
        let p = encode_word(data);
        for a in 0..CODEWORD_BITS {
            for b in (a + 1)..CODEWORD_BITS {
                let (mut d, mut pp) = (data, p);
                for bit in [a, b] {
                    if bit < 64 {
                        d ^= 1u64 << bit;
                    } else {
                        pp ^= 1 << (bit - 64);
                    }
                }
                assert_eq!(
                    decode_word(d, pp),
                    WordDecode::Uncorrectable,
                    "bits {a},{b}"
                );
            }
        }
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = EccStats {
            corrected: 1,
            detected_uncorrectable: 2,
            scrub_passes: 3,
        };
        a.absorb(&EccStats {
            corrected: 10,
            detected_uncorrectable: 20,
            scrub_passes: 30,
        });
        assert_eq!(a.corrected, 11);
        assert_eq!(a.detected_uncorrectable, 22);
        assert_eq!(a.scrub_passes, 33);
    }
}
