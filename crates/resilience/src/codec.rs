//! Equal-word-size storage codecs: encode a tensor into the packed
//! `n`-bit codes a weight buffer would hold, and decode back under a
//! [`DecodePolicy`].
//!
//! This is the bridge between the fault model (which strikes stored
//! bits) and the format algebra (which defines what those bits mean).
//! Each [`FormatKind`] gets the per-tensor side state a real
//! accelerator would keep next to the code buffer — AdaptivFloat's
//! `exp_bias`, BFP's shared exponent, Uniform's scale — derived once
//! from the clean tensor, so a campaign corrupts codes against *fixed*
//! parameters, exactly like a deployed model.

use adaptivfloat::{
    AdaptivFloat, AdaptivParams, BlockFloat, DecodePolicy, DecodeStats, FixedPoint, FormatError,
    FormatKind, IeeeLikeFloat, NumberFormat, PackedCodes, PlanParams, Posit, QuantStats, Uniform,
};

/// A fitted per-tensor storage codec: format geometry plus the derived
/// side parameters needed to encode/decode `n`-bit words.
#[derive(Debug, Clone)]
pub enum StorageCodec {
    /// AdaptivFloat `<n,3>` with its fitted per-tensor exponent bias.
    Adaptiv {
        /// Format geometry.
        fmt: AdaptivFloat,
        /// Fitted per-tensor parameters (exp_bias).
        params: AdaptivParams,
    },
    /// IEEE-like float — stateless, the bits are self-describing.
    Ieee {
        /// Format geometry.
        fmt: IeeeLikeFloat,
    },
    /// Posit — stateless, the bits are self-describing.
    Posit {
        /// Format geometry.
        fmt: Posit,
    },
    /// Block floating-point with the fitted per-tensor shared exponent.
    Bfp {
        /// Format geometry.
        fmt: BlockFloat,
        /// Fitted shared exponent.
        exp: i32,
    },
    /// Symmetric uniform with the fitted per-tensor scale.
    Uniform {
        /// Format geometry.
        fmt: Uniform,
        /// Fitted scale.
        scale: f64,
    },
    /// Fixed-point Qi.f — stateless baseline.
    Fixed {
        /// Format geometry.
        fmt: FixedPoint,
    },
}

impl StorageCodec {
    /// Fit the codec for `kind` at word size `n` to a clean tensor,
    /// using the same per-kind field splits as [`FormatKind::build`].
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if `n` is invalid for the
    /// kind's geometry.
    pub fn fit(kind: FormatKind, n: u32, data: &[f32]) -> Result<Self, FormatError> {
        // One scan of the clean tensor, then the format's own planner
        // derives the side parameters — the same frozen values every
        // quantization call site uses, read back through the plan.
        let stats = QuantStats::from_slice(data);
        Ok(match kind {
            FormatKind::AdaptivFloat => {
                let fmt = AdaptivFloat::new(n, 3.min(n - 1))?;
                let PlanParams::AdaptivFloat { exp_bias } = *fmt.plan(&stats).params() else {
                    unreachable!("AdaptivFloat plans carry an exponent bias")
                };
                let params = AdaptivParams {
                    n: fmt.n(),
                    e: fmt.e(),
                    exp_bias,
                };
                StorageCodec::Adaptiv { fmt, params }
            }
            FormatKind::Float => {
                let e = if n <= 4 { 3 } else { 4 };
                StorageCodec::Ieee {
                    fmt: IeeeLikeFloat::new(n, e)?,
                }
            }
            FormatKind::Posit => {
                let es = if n <= 4 { 0 } else { 1 };
                StorageCodec::Posit {
                    fmt: Posit::new(n, es)?,
                }
            }
            FormatKind::Bfp => {
                let fmt = BlockFloat::new(n)?;
                let exp = match *fmt.plan(&stats).params() {
                    PlanParams::Bfp {
                        shared_exp: Some(e),
                    } => e,
                    // All-zero tensor: the planner short-circuits to the
                    // zero backend; keep the legacy degenerate exponent.
                    _ => BlockFloat::shared_exponent(0.0),
                };
                StorageCodec::Bfp { fmt, exp }
            }
            FormatKind::Uniform => {
                let fmt = Uniform::new(n)?;
                let PlanParams::Uniform { scale } = *fmt.plan(&stats).params() else {
                    unreachable!("Uniform plans carry a scale")
                };
                StorageCodec::Uniform { fmt, scale }
            }
        })
    }

    /// Reconstruct the codec for `kind` at word size `n` from frozen
    /// [`PlanParams`] — the warm-start path: no tensor scan, no planner
    /// run, just the side state a container stored. Produces a codec
    /// bit-identical to the [`fit`](Self::fit) that froze the params.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if `n` is invalid for the
    /// kind's geometry or `params` is not the variant `kind` freezes
    /// (e.g. a Uniform scale presented for an AdaptivFloat tensor).
    pub fn from_params(kind: FormatKind, n: u32, params: PlanParams) -> Result<Self, FormatError> {
        let mismatch = FormatError::InvalidBits {
            n,
            e: 0,
            reason: "stored PlanParams variant does not match the format kind",
        };
        Ok(match kind {
            FormatKind::AdaptivFloat => {
                let PlanParams::AdaptivFloat { exp_bias } = params else {
                    return Err(mismatch);
                };
                let fmt = AdaptivFloat::new(n, 3.min(n - 1))?;
                let params = AdaptivParams {
                    n: fmt.n(),
                    e: fmt.e(),
                    exp_bias,
                };
                StorageCodec::Adaptiv { fmt, params }
            }
            FormatKind::Float => {
                let PlanParams::Static = params else {
                    return Err(mismatch);
                };
                let e = if n <= 4 { 3 } else { 4 };
                StorageCodec::Ieee {
                    fmt: IeeeLikeFloat::new(n, e)?,
                }
            }
            FormatKind::Posit => {
                let PlanParams::Static = params else {
                    return Err(mismatch);
                };
                let es = if n <= 4 { 0 } else { 1 };
                StorageCodec::Posit {
                    fmt: Posit::new(n, es)?,
                }
            }
            FormatKind::Bfp => {
                let PlanParams::Bfp { shared_exp } = params else {
                    return Err(mismatch);
                };
                let fmt = BlockFloat::new(n)?;
                let exp = shared_exp.unwrap_or_else(|| BlockFloat::shared_exponent(0.0));
                StorageCodec::Bfp { fmt, exp }
            }
            FormatKind::Uniform => {
                let PlanParams::Uniform { scale } = params else {
                    return Err(mismatch);
                };
                StorageCodec::Uniform {
                    fmt: Uniform::new(n)?,
                    scale,
                }
            }
        })
    }

    /// The frozen per-tensor side state as the portable [`PlanParams`]
    /// record a container persists. Stateless codecs (IEEE, posit,
    /// fixed) report [`PlanParams::Static`].
    pub fn params(&self) -> PlanParams {
        match self {
            StorageCodec::Adaptiv { params, .. } => PlanParams::AdaptivFloat {
                exp_bias: params.exp_bias,
            },
            StorageCodec::Ieee { .. } | StorageCodec::Posit { .. } | StorageCodec::Fixed { .. } => {
                PlanParams::Static
            }
            StorageCodec::Bfp { exp, .. } => PlanParams::Bfp {
                shared_exp: Some(*exp),
            },
            StorageCodec::Uniform { scale, .. } => PlanParams::Uniform { scale: *scale },
        }
    }

    /// The [`FormatKind`] this codec implements, or `None` for the
    /// fixed-point baseline (which is not part of the paper's sweep).
    pub fn kind(&self) -> Option<FormatKind> {
        match self {
            StorageCodec::Adaptiv { .. } => Some(FormatKind::AdaptivFloat),
            StorageCodec::Ieee { .. } => Some(FormatKind::Float),
            StorageCodec::Posit { .. } => Some(FormatKind::Posit),
            StorageCodec::Bfp { .. } => Some(FormatKind::Bfp),
            StorageCodec::Uniform { .. } => Some(FormatKind::Uniform),
            StorageCodec::Fixed { .. } => None,
        }
    }

    /// A fixed-point codec (not part of [`FormatKind::ALL`]; offered for
    /// baseline sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] for invalid geometry.
    pub fn fit_fixed(n: u32, int_bits: u32) -> Result<Self, FormatError> {
        Ok(StorageCodec::Fixed {
            fmt: FixedPoint::new(n, int_bits)?,
        })
    }

    /// Word size in bits.
    pub fn width(&self) -> u32 {
        match self {
            StorageCodec::Adaptiv { fmt, .. } => fmt.n(),
            StorageCodec::Ieee { fmt } => fmt.n(),
            StorageCodec::Posit { fmt } => fmt.n(),
            StorageCodec::Bfp { fmt, .. } => fmt.n(),
            StorageCodec::Uniform { fmt, .. } => fmt.n(),
            StorageCodec::Fixed { fmt } => fmt.n(),
        }
    }

    /// Encode one value to its `n`-bit word.
    pub fn encode_one(&self, v: f32) -> u32 {
        match self {
            StorageCodec::Adaptiv { fmt, params } => fmt.encode_with(params, v),
            StorageCodec::Ieee { fmt } => fmt.encode(v),
            StorageCodec::Posit { fmt } => fmt.encode(v),
            StorageCodec::Bfp { fmt, exp } => fmt.encode_code(*exp, v),
            StorageCodec::Uniform { fmt, scale } => fmt.encode_code(*scale, v),
            StorageCodec::Fixed { fmt } => fmt.encode(v),
        }
    }

    /// Decode one `n`-bit word under `policy`, counting into `stats`.
    pub fn decode_one(&self, code: u32, policy: DecodePolicy, stats: &mut DecodeStats) -> f32 {
        match self {
            StorageCodec::Adaptiv { fmt, params } => {
                fmt.decode_with_policy(params, code, policy, stats)
            }
            StorageCodec::Ieee { fmt } => fmt.decode_with_policy(code, policy, stats),
            StorageCodec::Posit { fmt } => fmt.decode_with_policy(code, policy, stats),
            StorageCodec::Bfp { fmt, exp } => {
                fmt.decode_code_with_policy(*exp, code, policy, stats)
            }
            StorageCodec::Uniform { fmt, scale } => {
                fmt.decode_code_with_policy(*scale, code, policy, stats)
            }
            StorageCodec::Fixed { fmt } => fmt.decode_with_policy(code, policy, stats),
        }
    }

    /// Encode a whole tensor into packed storage.
    pub fn encode_slice(&self, data: &[f32]) -> PackedCodes {
        let mut packed = PackedCodes::new(self.width());
        for &v in data {
            packed.push(self.encode_one(v) as u64);
        }
        packed
    }

    /// Decode packed storage back to values under `policy`, returning
    /// the per-tensor corruption counters alongside.
    pub fn decode_slice(
        &self,
        codes: &PackedCodes,
        policy: DecodePolicy,
    ) -> (Vec<f32>, DecodeStats) {
        let mut stats = DecodeStats::new();
        let vals = codes
            .iter()
            .map(|c| self.decode_one(c as u32, policy, &mut stats))
            .collect();
        (vals, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Vec<f32> {
        (0..256)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.043)
            .collect()
    }

    #[test]
    fn clean_roundtrip_matches_quantizer_for_every_kind() {
        let data = sample_data();
        for kind in FormatKind::ALL {
            for n in [4u32, 8] {
                let codec = StorageCodec::fit(kind, n, &data).expect("valid geometry");
                let packed = codec.encode_slice(&data);
                let (decoded, stats) = codec.decode_slice(&packed, DecodePolicy::Harden);
                assert_eq!(stats.decoded, data.len() as u64);
                assert_eq!(
                    stats.repaired(),
                    0,
                    "{kind}: clean codes must never trip the hardening"
                );
                // The paper's formats quantize per tensor; the codec
                // round-trip must agree with the reference slice path.
                let fmt = kind.build(n).unwrap();
                let want = fmt.quantize_slice(&data);
                for (i, (&got, &w)) in decoded.iter().zip(&want).enumerate() {
                    assert!(
                        (got - w).abs() <= 1e-6 * w.abs().max(1.0),
                        "{kind} n={n} element {i}: codec {got} vs quantizer {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_params_rebuilds_a_bit_identical_codec() {
        let data = sample_data();
        for kind in FormatKind::ALL {
            for n in [4u32, 8] {
                let fitted = StorageCodec::fit(kind, n, &data).unwrap();
                let rebuilt = StorageCodec::from_params(kind, n, fitted.params()).unwrap();
                assert_eq!(rebuilt.kind(), Some(kind));
                assert_eq!(rebuilt.width(), n);
                // Same codes out, same values back — warm start must be
                // indistinguishable from the original fit.
                let a = fitted.encode_slice(&data);
                let b = rebuilt.encode_slice(&data);
                assert_eq!(a, b, "{kind} n={n}: encode must be bit-identical");
                let (da, _) = fitted.decode_slice(&a, DecodePolicy::Harden);
                let (db, _) = rebuilt.decode_slice(&b, DecodePolicy::Harden);
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&da), bits(&db), "{kind} n={n}: decode mismatch");
            }
        }
    }

    #[test]
    fn from_params_rejects_mismatched_variants() {
        // A Uniform scale presented as AdaptivFloat params must fail
        // typed, not build a nonsense codec.
        let err = StorageCodec::from_params(
            FormatKind::AdaptivFloat,
            8,
            PlanParams::Uniform { scale: 0.25 },
        );
        assert!(err.is_err());
        let err = StorageCodec::from_params(FormatKind::Float, 8, PlanParams::PerBlock);
        assert!(err.is_err());
    }

    #[test]
    fn fixed_codec_roundtrips() {
        let codec = StorageCodec::fit_fixed(8, 2).unwrap();
        let data = [1.5f32, -0.25, 3.96875, -3.96875, 0.0];
        let packed = codec.encode_slice(&data);
        let (decoded, stats) = codec.decode_slice(&packed, DecodePolicy::Harden);
        assert_eq!(decoded, data.to_vec());
        assert_eq!(stats.repaired(), 0);
    }

    #[test]
    fn hardened_decode_repairs_posit_nar() {
        let data = sample_data();
        let codec = StorageCodec::fit(FormatKind::Posit, 8, &data).unwrap();
        let mut packed = codec.encode_slice(&data);
        // Force the NaR pattern (1000_0000) into element 3.
        packed.set(3, 0x80);
        let (raw, raw_stats) = codec.decode_slice(&packed, DecodePolicy::Raw);
        assert!(raw[3].is_nan(), "raw decode must propagate NaR");
        assert_eq!(raw_stats.repaired(), 0);
        let (hard, stats) = codec.decode_slice(&packed, DecodePolicy::Harden);
        assert_eq!(hard[3], 0.0, "hardened decode must repair NaR to 0");
        assert_eq!(stats.nonfinite, 1);
    }

    #[test]
    fn hardened_decode_clamps_integer_extremes() {
        let data = sample_data();
        for kind in [FormatKind::Uniform, FormatKind::Bfp] {
            let codec = StorageCodec::fit(kind, 8, &data).unwrap();
            let mut packed = codec.encode_slice(&data);
            // 0x80 is the unused −2^(n−1) two's-complement extreme.
            packed.set(0, 0x80);
            let (_, stats) = codec.decode_slice(&packed, DecodePolicy::Harden);
            assert_eq!(
                stats.out_of_range, 1,
                "{kind}: the asymmetric extreme must be caught"
            );
        }
    }
}
