//! The fault model: what kinds of upsets exist and how a seeded
//! campaign turns them into a concrete, deterministic fault map.

use crate::rng::SplitMix64;

/// The kinds of storage upsets a campaign can inject into a word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Flip exactly one uniformly-chosen bit of the word.
    SingleBit,
    /// Flip `flips` distinct uniformly-chosen bits of the word.
    MultiBit {
        /// Number of distinct bits to flip (clamped to the word width).
        flips: u32,
    },
    /// Force one uniformly-chosen bit to a fixed value (a hard fault in
    /// a storage cell). Unlike a flip, re-applying it is idempotent and
    /// it may happen to match the stored bit, injecting no visible
    /// change.
    StuckAt {
        /// The value the cell is stuck at.
        value: bool,
    },
    /// Flip a contiguous run of `len` bits starting at a
    /// uniformly-chosen position (runs clip at the word's top bit) — a
    /// multi-cell upset from a single particle strike.
    Burst {
        /// Burst length in bits (clamped to the word width).
        len: u32,
    },
}

impl FaultKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            FaultKind::SingleBit => "single-bit".to_string(),
            FaultKind::MultiBit { flips } => format!("multi-bit({flips})"),
            FaultKind::StuckAt { value } => format!("stuck-at-{}", u8::from(*value)),
            FaultKind::Burst { len } => format!("burst({len})"),
        }
    }
}

/// A fault campaign specification: which upset, how often, which seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The upset model.
    pub kind: FaultKind,
    /// Per-element fault probability in `[0, 1]`. `0.0` yields an empty
    /// fault map — injection is then a guaranteed no-op.
    pub rate: f64,
    /// Campaign seed. The same `(kind, rate, seed, len, width)` always
    /// yields the same fault map, independent of thread count.
    pub seed: u64,
}

impl FaultSpec {
    /// A single-bit campaign — the common case.
    pub fn single_bit(rate: f64, seed: u64) -> Self {
        FaultSpec {
            kind: FaultKind::SingleBit,
            rate,
            seed,
        }
    }

    /// Sample the concrete fault map for a tensor of `len` words of
    /// `width` bits. Deterministic: every element's hit decision and
    /// fault shape come from its own keyed [`SplitMix64`] stream, so the
    /// result is identical however the loop is split across threads.
    pub fn sample(&self, len: usize, width: u32) -> FaultMap {
        assert!(
            (0.0..=1.0).contains(&self.rate),
            "fault rate must be a probability, got {}",
            self.rate
        );
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let mut events = Vec::new();
        if self.rate > 0.0 {
            for index in 0..len {
                let mut hit = SplitMix64::for_element(self.seed, DOMAIN_HIT, index as u64);
                if hit.next_f64() >= self.rate {
                    continue;
                }
                let mut shape = SplitMix64::for_element(self.seed, DOMAIN_SHAPE, index as u64);
                events.push(sample_event(&self.kind, index, width, &mut shape));
            }
        }
        FaultMap { width, events }
    }
}

const DOMAIN_HIT: u64 = 0;
const DOMAIN_SHAPE: u64 = 1;

/// One concrete upset: masks to apply to the word at `index` as
/// `word = ((word & !clear_mask) | set_mask) ^ xor_mask`. Flips use
/// `xor_mask`; stuck-at cells use `set_mask`/`clear_mask`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Element index the upset strikes.
    pub index: usize,
    /// Bits forced to 1.
    pub set_mask: u64,
    /// Bits forced to 0.
    pub clear_mask: u64,
    /// Bits flipped.
    pub xor_mask: u64,
}

impl FaultEvent {
    /// Apply this upset to a stored word.
    pub fn apply(&self, word: u64) -> u64 {
        ((word & !self.clear_mask) | self.set_mask) ^ self.xor_mask
    }
}

fn sample_event(kind: &FaultKind, index: usize, width: u32, rng: &mut SplitMix64) -> FaultEvent {
    let mut event = FaultEvent {
        index,
        set_mask: 0,
        clear_mask: 0,
        xor_mask: 0,
    };
    match *kind {
        FaultKind::SingleBit => {
            event.xor_mask = 1u64 << rng.next_below(width as u64);
        }
        FaultKind::MultiBit { flips } => {
            let flips = flips.clamp(1, width);
            let mut mask = 0u64;
            while mask.count_ones() < flips {
                mask |= 1u64 << rng.next_below(width as u64);
            }
            event.xor_mask = mask;
        }
        FaultKind::StuckAt { value } => {
            let bit = 1u64 << rng.next_below(width as u64);
            if value {
                event.set_mask = bit;
            } else {
                event.clear_mask = bit;
            }
        }
        FaultKind::Burst { len } => {
            let len = len.clamp(1, width);
            let start = rng.next_below(width as u64) as u32;
            let run = len.min(width - start);
            let ones = if run == 64 {
                u64::MAX
            } else {
                (1u64 << run) - 1
            };
            event.xor_mask = ones << start;
        }
    }
    event
}

/// The concrete, reproducible outcome of sampling a [`FaultSpec`]
/// against a tensor: which elements are struck and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    width: u32,
    events: Vec<FaultEvent>,
}

impl FaultMap {
    /// Word width the map was sampled for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The upsets, in ascending element order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of struck elements.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the map strikes nothing (guaranteed at rate 0).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_empty() {
        let map = FaultSpec::single_bit(0.0, 7).sample(10_000, 8);
        assert!(map.is_empty());
    }

    #[test]
    fn full_rate_strikes_everything() {
        let map = FaultSpec::single_bit(1.0, 7).sample(500, 8);
        assert_eq!(map.len(), 500);
        for (i, ev) in map.events().iter().enumerate() {
            assert_eq!(ev.index, i);
            assert_eq!(ev.xor_mask.count_ones(), 1);
            assert!(ev.xor_mask < 1 << 8);
        }
    }

    #[test]
    fn same_seed_same_map_different_seed_different_map() {
        let a = FaultSpec::single_bit(0.05, 11).sample(4096, 6);
        let b = FaultSpec::single_bit(0.05, 11).sample(4096, 6);
        let c = FaultSpec::single_bit(0.05, 12).sample(4096, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let map = FaultSpec::single_bit(0.1, 3).sample(20_000, 8);
        let got = map.len() as f64 / 20_000.0;
        assert!((got - 0.1).abs() < 0.01, "empirical rate {got}");
    }

    #[test]
    fn multi_bit_flips_exactly_k_distinct_bits() {
        let spec = FaultSpec {
            kind: FaultKind::MultiBit { flips: 3 },
            rate: 1.0,
            seed: 5,
        };
        for ev in spec.sample(200, 8).events() {
            assert_eq!(ev.xor_mask.count_ones(), 3);
        }
        // Clamps to the word width when flips exceed it.
        let wide = FaultSpec {
            kind: FaultKind::MultiBit { flips: 9 },
            rate: 1.0,
            seed: 5,
        };
        for ev in wide.sample(50, 4).events() {
            assert_eq!(ev.xor_mask.count_ones(), 4);
        }
    }

    #[test]
    fn stuck_at_is_idempotent() {
        let spec = FaultSpec {
            kind: FaultKind::StuckAt { value: true },
            rate: 1.0,
            seed: 9,
        };
        for ev in spec.sample(100, 8).events() {
            let w = 0b0101_0101u64;
            let once = ev.apply(w);
            assert_eq!(ev.apply(once), once, "stuck-at must be idempotent");
            assert_eq!(once | ev.set_mask, once);
        }
    }

    #[test]
    fn burst_is_contiguous_and_clips() {
        let spec = FaultSpec {
            kind: FaultKind::Burst { len: 3 },
            rate: 1.0,
            seed: 2,
        };
        for ev in spec.sample(300, 8).events() {
            let m = ev.xor_mask;
            assert!(m != 0 && m < 1 << 8);
            // Contiguous: shifting out trailing zeros leaves all-ones.
            let norm = m >> m.trailing_zeros();
            assert_eq!(norm & (norm + 1), 0, "burst mask {m:#b} not contiguous");
            assert!(m.count_ones() <= 3);
        }
    }

    #[test]
    fn rejects_bad_rate() {
        let r = std::panic::catch_unwind(|| FaultSpec::single_bit(1.5, 0).sample(10, 8));
        assert!(r.is_err());
    }
}
