//! Seeded fault plans for the PE datapath hooks in `af-hw`.
//!
//! Storage injection corrupts bits *at rest*; [`PeFaultPlan`] corrupts
//! bits *in flight*, implementing [`DatapathFaults`] so the bit-accurate
//! `hfint_dot_with_faults` / `int_dot_scaled_with_faults` models can be
//! run under transient upsets. Decisions are keyed per `(stage, lane)`
//! from the campaign seed — the same determinism scheme as storage
//! injection — so a plan is reusable across calls and thread counts.

use crate::rng::SplitMix64;
use af_hw::DatapathFaults;
use std::cell::Cell;

/// Stage keys for the decision domains.
const DOMAIN_PRODUCT: u64 = 10;
const DOMAIN_ACCUMULATOR: u64 = 11;

/// A seeded transient-fault plan for one PE invocation: each multiplier
/// output and accumulator update is struck independently with
/// `rate`, flipping one uniformly-chosen low datapath bit
/// (bit 0..`datapath_bits`). The exponent-bias register is flipped when
/// `bias_flip_mask` is non-zero — a single register, so it is either
/// faulted or not rather than sampled per lane.
#[derive(Debug)]
pub struct PeFaultPlan {
    seed: u64,
    rate: f64,
    datapath_bits: u32,
    bias_flip_mask: i32,
    injected: Cell<u64>,
}

impl PeFaultPlan {
    /// Plan striking multiplier outputs and accumulator state with
    /// per-lane probability `rate`, flipping one bit below
    /// `datapath_bits` (the modeled register width).
    pub fn new(seed: u64, rate: f64, datapath_bits: u32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        assert!((1..=100).contains(&datapath_bits), "datapath width 1..=100");
        PeFaultPlan {
            seed,
            rate,
            datapath_bits,
            bias_flip_mask: 0,
            injected: Cell::new(0),
        }
    }

    /// Additionally XOR the exponent-bias register with `mask`.
    pub fn with_bias_flip(mut self, mask: i32) -> Self {
        self.bias_flip_mask = mask;
        self
    }

    /// Number of upsets this plan has injected so far (across all
    /// hooks; bias flips count once per register read).
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    fn strike(&self, domain: u64, lane: usize, value: i128) -> i128 {
        if self.rate == 0.0 {
            return value;
        }
        let mut hit = SplitMix64::for_element(self.seed, domain, lane as u64);
        if hit.next_f64() >= self.rate {
            return value;
        }
        let mut shape = SplitMix64::for_element(self.seed, domain ^ 0xFF, lane as u64);
        let bit = shape.next_below(self.datapath_bits as u64);
        self.injected.set(self.injected.get() + 1);
        value ^ (1i128 << bit)
    }
}

impl DatapathFaults for PeFaultPlan {
    fn on_product(&self, lane: usize, product: i128) -> i128 {
        self.strike(DOMAIN_PRODUCT, lane, product)
    }

    fn on_accumulator(&self, lane: usize, acc: i128) -> i128 {
        self.strike(DOMAIN_ACCUMULATOR, lane, acc)
    }

    fn on_exp_bias(&self, bias: i32) -> i32 {
        if self.bias_flip_mask != 0 {
            self.injected.set(self.injected.get() + 1);
            bias ^ self.bias_flip_mask
        } else {
            bias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivfloat::AdaptivFloat;
    use af_hw::arith::{hfint_dot, hfint_dot_with_faults};

    fn operands() -> (
        AdaptivFloat,
        adaptivfloat::AdaptivParams,
        Vec<u32>,
        Vec<u32>,
    ) {
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let w: Vec<f32> = (0..32).map(|i| ((i % 13) as f32 - 6.0) * 0.21).collect();
        let a: Vec<f32> = (0..32).map(|i| ((i % 11) as f32 - 5.0) * 0.17).collect();
        let params = fmt.params_for(&w);
        let wc = w.iter().map(|&v| fmt.encode_with(&params, v)).collect();
        let ac = a.iter().map(|&v| fmt.encode_with(&params, v)).collect();
        (fmt, params, wc, ac)
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_clean() {
        let (fmt, params, wc, ac) = operands();
        let plan = PeFaultPlan::new(9, 0.0, 30);
        let clean = hfint_dot(&fmt, &params, &params, &wc, &ac);
        let faulty = hfint_dot_with_faults(&fmt, &params, &params, &wc, &ac, &plan);
        assert_eq!(clean.0, faulty.0);
        assert_eq!(clean.1.to_bits(), faulty.1.to_bits());
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn full_rate_plan_perturbs_and_counts() {
        let (fmt, params, wc, ac) = operands();
        let plan = PeFaultPlan::new(9, 1.0, 30);
        let clean = hfint_dot(&fmt, &params, &params, &wc, &ac);
        let faulty = hfint_dot_with_faults(&fmt, &params, &params, &wc, &ac, &plan);
        assert_ne!(clean.0, faulty.0, "rate-1 strikes must perturb the MAC");
        assert!(plan.injected() > 0);
    }

    #[test]
    fn same_seed_reproduces_the_same_faulty_result() {
        let (fmt, params, wc, ac) = operands();
        let a = hfint_dot_with_faults(
            &fmt,
            &params,
            &params,
            &wc,
            &ac,
            &PeFaultPlan::new(4, 0.3, 30),
        );
        let b = hfint_dot_with_faults(
            &fmt,
            &params,
            &params,
            &wc,
            &ac,
            &PeFaultPlan::new(4, 0.3, 30),
        );
        let c = hfint_dot_with_faults(
            &fmt,
            &params,
            &params,
            &wc,
            &ac,
            &PeFaultPlan::new(5, 0.3, 30),
        );
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_ne!(a.0, c.0, "different seed should strike differently");
    }

    #[test]
    fn bias_flip_rescales_output() {
        let (fmt, params, wc, ac) = operands();
        let plan = PeFaultPlan::new(0, 0.0, 30).with_bias_flip(0b100);
        let clean = hfint_dot(&fmt, &params, &params, &wc, &ac);
        let faulty = hfint_dot_with_faults(&fmt, &params, &params, &wc, &ac, &plan);
        assert_eq!(clean.0, faulty.0, "bias faults leave the integer alone");
        assert_ne!(clean.1, faulty.1);
        assert_eq!(plan.injected(), 2, "both bias registers read once");
    }
}
