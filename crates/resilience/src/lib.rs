//! # af-resilience — seeded fault injection and resilience evaluation
//!
//! The paper's title promises *resilient* deep learning inference; this
//! crate supplies the machinery to measure it. It has three layers:
//!
//! * **Fault model** ([`fault`], [`rng`]) — [`FaultSpec`] describes an
//!   upset (single-bit, multi-bit, stuck-at, burst) at a rate under a
//!   seed; sampling it yields a concrete [`FaultMap`]. All randomness is
//!   keyed per `(seed, element)` through a splittable SplitMix64
//!   ([`rng::SplitMix64`]), so the same seed yields a bit-identical
//!   fault map at any `AF_NUM_THREADS` setting.
//! * **Injection adapters** ([`inject`], [`pe`]) — apply a map to packed
//!   sub-byte code buffers ([`adaptivfloat::PackedCodes`]), unpacked
//!   code words, or raw f32 tensors; [`PeFaultPlan`] strikes the HFINT /
//!   INT PE datapaths through the `af-hw` [`af_hw::DatapathFaults`]
//!   hooks.
//! * **Protection** ([`ecc`], [`protected`]) — the recovery half:
//!   [`ProtectedCodes`] wraps a packed buffer in extended
//!   Hamming(72,64) SEC-DED parity (one byte per raw storage word),
//!   correcting any single-bit upset and detecting double-bit upsets as
//!   uncorrectable, with scrub/decode APIs and [`EccStats`] counters.
//! * **Campaigns** ([`codec`], [`campaign`]) — [`StorageCodec`] encodes
//!   tensors into equal-word-size storage per [`adaptivfloat::FormatKind`];
//!   [`run_weight_campaign`] corrupts the stored codes, decodes them
//!   under a [`adaptivfloat::DecodePolicy`], and reports RMS damage and
//!   the hardened decoder's detection counters.
//!
//! The `fault_sweep` binary in `af-bench` drives these campaigns over
//! the paper's toy models and renders the format-vs-fault-rate table.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod campaign;
pub mod codec;
pub mod ecc;
pub mod fault;
pub mod inject;
pub mod pe;
pub mod protected;
pub mod rng;

pub use campaign::{run_f32_campaign, run_weight_campaign, CampaignConfig, CampaignOutcome};
pub use codec::StorageCodec;
pub use ecc::{decode_word, encode_word, EccStats, WordDecode, CODEWORD_BITS, PARITY_BITS};
pub use fault::{FaultEvent, FaultKind, FaultMap, FaultSpec};
pub use inject::{
    inject_codes, inject_f32, inject_packed, inject_packed_bits, inject_packed_with,
    inject_protected_bits,
};
pub use pe::PeFaultPlan;
pub use protected::{ProtectedCodes, ScrubReport};
pub use rng::SplitMix64;
