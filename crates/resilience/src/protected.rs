//! SEC-DED protected packed-code storage: a [`PackedCodes`] buffer with
//! an extended Hamming(72,64) parity byte per raw storage word.
//!
//! [`ProtectedCodes`] is what a serving runtime keeps its frozen weight
//! codes in: faults strike the raw storage image (data *or* parity
//! bits), a periodic [`scrub`](ProtectedCodes::scrub) repairs every
//! correctable word in place, and [`decode`](ProtectedCodes::decode)
//! reads out a corrected snapshot without waiting for the scrubber.
//! Double-bit errors are reported as uncorrectable so the owner can
//! rebuild the store from a master copy.

use crate::ecc::{decode_word, encode_word, EccStats, WordDecode, CODEWORD_BITS, PARITY_BITS};
use adaptivfloat::PackedCodes;

/// A packed code buffer protected by per-word SEC-DED parity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedCodes {
    data: PackedCodes,
    parity: Vec<u8>,
    stats: EccStats,
}

/// What one sweep (or one read-out) over a protected store found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Raw storage words examined.
    pub words_scanned: usize,
    /// Words with a single-bit error, corrected.
    pub corrected: usize,
    /// Words with a detected-uncorrectable (double-bit) error.
    pub uncorrectable: usize,
}

impl ProtectedCodes {
    /// Wrap `codes` in SEC-DED protection, computing one parity byte per
    /// raw storage word.
    pub fn protect(codes: PackedCodes) -> Self {
        let parity = codes.words().iter().map(|&w| encode_word(w)).collect();
        ProtectedCodes {
            data: codes,
            parity,
            stats: EccStats::default(),
        }
    }

    /// Reassemble a protected store from its persisted image: the code
    /// buffer, its parity bytes, and the cumulative health counters.
    ///
    /// Returns `None` (never panics) if `parity` does not hold exactly
    /// one byte per raw storage word. The parity is taken as stored —
    /// not recomputed — so faults that were on disk remain visible to
    /// the next [`scrub`](Self::scrub), exactly as if the store had
    /// stayed resident.
    pub fn from_parts(data: PackedCodes, parity: Vec<u8>, stats: EccStats) -> Option<Self> {
        if parity.len() != data.words().len() {
            return None;
        }
        Some(ProtectedCodes {
            data,
            parity,
            stats,
        })
    }

    /// Code width in bits (delegates to the protected buffer).
    pub fn width(&self) -> u32 {
        self.data.width()
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of raw 64-bit storage words (each carrying its own parity
    /// byte). The protected storage image is `raw_words() ×`
    /// [`CODEWORD_BITS`] bits.
    pub fn raw_words(&self) -> usize {
        self.data.words().len()
    }

    /// The protected code buffer as stored — possibly corrupted; callers
    /// wanting trustworthy codes use [`decode`](Self::decode) or scrub
    /// first.
    pub fn codes(&self) -> &PackedCodes {
        &self.data
    }

    /// The stored parity bytes, one per raw word.
    pub fn parity(&self) -> &[u8] {
        &self.parity
    }

    /// Cumulative health counters (updated by [`scrub`](Self::scrub)).
    pub fn stats(&self) -> EccStats {
        self.stats
    }

    /// Replace the cumulative counters — used when a freshly re-encoded
    /// store carries over its predecessor's error history across a
    /// rebuild.
    pub fn with_stats(mut self, stats: EccStats) -> Self {
        self.stats = stats;
        self
    }

    /// Fold additional counters into the cumulative history in place —
    /// used when replaying journaled scrub outcomes onto a store image
    /// read back from disk.
    pub fn absorb_stats(&mut self, delta: &EccStats) {
        self.stats.absorb(delta);
    }

    /// Total bytes of protected storage: packed codes plus parity.
    pub fn storage_bytes(&self) -> usize {
        self.data.packed_bytes() + self.parity.len()
    }

    /// Read one bit of the raw storage image. Bits `0..64` address the
    /// data word, bits `64..`[`CODEWORD_BITS`] its parity byte.
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn raw_bit(&self, word: usize, bit: u32) -> bool {
        assert!(bit < CODEWORD_BITS, "bit {bit} out of codeword range");
        if bit < 64 {
            self.data.words()[word] >> bit & 1 == 1
        } else {
            self.parity[word] >> (bit - 64) & 1 == 1
        }
    }

    /// Overwrite one bit of the raw storage image (same addressing as
    /// [`raw_bit`](Self::raw_bit)) — the primitive fault injection and
    /// word-level repair share.
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn set_raw_bit(&mut self, word: usize, bit: u32, value: bool) {
        assert!(bit < CODEWORD_BITS, "bit {bit} out of codeword range");
        if bit < 64 {
            let mask = 1u64 << bit;
            let w = &mut self.data.words_mut()[word];
            *w = if value { *w | mask } else { *w & !mask };
        } else {
            let mask = 1u8 << (bit - 64);
            let p = &mut self.parity[word];
            *p = if value { *p | mask } else { *p & !mask };
        }
    }

    /// Flip one bit of the raw storage image (data or parity).
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn flip_raw_bit(&mut self, word: usize, bit: u32) {
        let old = self.raw_bit(word, bit);
        self.set_raw_bit(word, bit, !old);
    }

    /// Sweep the whole store once, repairing every correctable word in
    /// place and bumping the cumulative [`stats`](Self::stats)
    /// (including `scrub_passes`). Uncorrectable words are left as-is —
    /// the report tells the owner a rebuild is needed.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport {
            words_scanned: self.raw_words(),
            ..ScrubReport::default()
        };
        for i in 0..self.parity.len() {
            match decode_word(self.data.words()[i], self.parity[i]) {
                WordDecode::Clean => {}
                WordDecode::CorrectedData(fixed) => {
                    self.data.words_mut()[i] = fixed;
                    report.corrected += 1;
                }
                WordDecode::CorrectedParity(fixed) => {
                    self.parity[i] = fixed;
                    report.corrected += 1;
                }
                WordDecode::Uncorrectable => report.uncorrectable += 1,
            }
        }
        self.stats.corrected += report.corrected as u64;
        self.stats.detected_uncorrectable += report.uncorrectable as u64;
        self.stats.scrub_passes += 1;
        report
    }

    /// Read out a corrected snapshot of the codes without mutating the
    /// store: single-bit errors are corrected in the copy, uncorrectable
    /// words pass through raw (the report says how many). Cumulative
    /// stats are *not* touched — this is a read path, not a scrub.
    pub fn decode(&self) -> (PackedCodes, ScrubReport) {
        let mut snapshot = self.data.clone();
        let mut report = ScrubReport {
            words_scanned: self.raw_words(),
            ..ScrubReport::default()
        };
        for i in 0..self.parity.len() {
            match decode_word(snapshot.words()[i], self.parity[i]) {
                WordDecode::Clean => {}
                // A flipped parity bit doesn't change what the codes
                // decode to, but it is still a corrected error.
                WordDecode::CorrectedParity(_) => report.corrected += 1,
                WordDecode::CorrectedData(fixed) => {
                    snapshot.words_mut()[i] = fixed;
                    report.corrected += 1;
                }
                WordDecode::Uncorrectable => report.uncorrectable += 1,
            }
        }
        (snapshot, report)
    }
}

/// Parity storage overhead of the scheme, as stored bits per data bit
/// ([`PARITY_BITS`]`/64` = 12.5%).
pub fn parity_overhead() -> f64 {
    f64::from(PARITY_BITS) / 64.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packed(width: u32, n: usize) -> PackedCodes {
        let mut p = PackedCodes::new(width);
        for i in 0..n {
            p.push((i as u64).wrapping_mul(0x9E37_79B9));
        }
        p
    }

    #[test]
    fn protect_then_scrub_is_clean() {
        let mut prot = ProtectedCodes::protect(packed(5, 100));
        let report = prot.scrub();
        assert_eq!(report.words_scanned, prot.raw_words());
        assert_eq!((report.corrected, report.uncorrectable), (0, 0));
        assert_eq!(prot.stats().scrub_passes, 1);
    }

    #[test]
    fn single_bit_error_is_repaired_in_place() {
        let clean = packed(7, 64);
        let mut prot = ProtectedCodes::protect(clean.clone());
        prot.flip_raw_bit(2, 13);
        assert_ne!(prot.codes(), &clean, "fault must land");
        let report = prot.scrub();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(prot.codes(), &clean, "scrub must restore bit-identity");
        assert_eq!(prot.stats().corrected, 1);
    }

    #[test]
    fn parity_bit_error_is_repaired_without_touching_data() {
        let clean = packed(4, 32);
        let mut prot = ProtectedCodes::protect(clean.clone());
        let before = prot.parity().to_vec();
        prot.flip_raw_bit(0, 64 + 3);
        assert_ne!(prot.parity(), &before[..]);
        let report = prot.scrub();
        assert_eq!(report.corrected, 1);
        assert_eq!(prot.codes(), &clean);
        assert_eq!(prot.parity(), &before[..]);
    }

    #[test]
    fn double_bit_error_is_uncorrectable_and_left_alone() {
        let clean = packed(8, 40);
        let mut prot = ProtectedCodes::protect(clean.clone());
        prot.flip_raw_bit(1, 5);
        prot.flip_raw_bit(1, 44);
        let corrupted = prot.codes().clone();
        let report = prot.scrub();
        assert_eq!(report.corrected, 0);
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(prot.codes(), &corrupted, "no miscorrection allowed");
        assert_eq!(prot.stats().detected_uncorrectable, 1);
    }

    #[test]
    fn decode_corrects_the_copy_not_the_store() {
        let clean = packed(6, 80);
        let mut prot = ProtectedCodes::protect(clean.clone());
        prot.flip_raw_bit(3, 21);
        let corrupted = prot.codes().clone();
        let (snapshot, report) = prot.decode();
        assert_eq!(snapshot, clean, "decode must return corrected codes");
        assert_eq!(report.corrected, 1);
        assert_eq!(prot.codes(), &corrupted, "store untouched by decode");
        assert_eq!(prot.stats(), EccStats::default(), "stats untouched too");
    }

    #[test]
    fn from_parts_roundtrips_faults_and_stats() {
        let mut prot = ProtectedCodes::protect(packed(7, 64));
        prot.flip_raw_bit(2, 13); // a latent fault, still unrepaired
        let stats_in = EccStats {
            corrected: 5,
            detected_uncorrectable: 1,
            scrub_passes: 3,
        };
        let rebuilt =
            ProtectedCodes::from_parts(prot.codes().clone(), prot.parity().to_vec(), stats_in)
                .unwrap();
        assert_eq!(rebuilt.codes(), prot.codes());
        assert_eq!(rebuilt.parity(), prot.parity());
        assert_eq!(rebuilt.stats(), stats_in);
        // The latent fault survived the roundtrip and scrubs out.
        let mut rebuilt = rebuilt;
        let report = rebuilt.scrub();
        assert_eq!(report.corrected, 1);
        // Parity length mismatch is a typed rejection, not a panic.
        assert!(
            ProtectedCodes::from_parts(packed(7, 64), vec![0u8; 3], EccStats::default()).is_none()
        );
    }

    #[test]
    fn storage_accounting() {
        let prot = ProtectedCodes::protect(packed(4, 128)); // 512 bits → 8 words
        assert_eq!(prot.raw_words(), 8);
        assert_eq!(prot.parity().len(), 8);
        assert_eq!(prot.storage_bytes(), 8 * 8 + 8);
        assert!((parity_overhead() - 0.125).abs() < 1e-12);
    }
}
