//! Campaign runner: sweep a fault model over a model's weight tensors
//! and measure the reconstruction damage per format.
//!
//! Determinism contract: a campaign's result is a pure function of
//! `(format, n, layers, config)` — **not** of the worker thread count.
//! Two mechanisms guarantee this:
//!
//! 1. fault maps are keyed per `(seed, layer, element)` through the
//!    splittable PRNG ([`crate::rng`]), so *which bits break* never
//!    depends on scheduling;
//! 2. per-layer partial sums are computed serially within one worker
//!    and merged on the caller's thread in layer order, so the
//!    non-associativity of floating-point addition never sees a
//!    thread-count-dependent grouping.

use crate::codec::StorageCodec;
use crate::fault::{FaultKind, FaultSpec};
use crate::inject::{inject_f32, inject_packed};
use crate::rng::mix;
use adaptivfloat::{DecodePolicy, DecodeStats, FormatError, FormatKind};

/// What to inject, how hard, and how to decode afterwards.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// The upset model applied to stored words.
    pub kind: FaultKind,
    /// Per-element fault probability.
    pub rate: f64,
    /// Campaign seed; layer `i` derives its map seed as `seed ⊕ mix(i)`.
    pub seed: u64,
    /// Decode policy for the corrupted codes.
    pub policy: DecodePolicy,
    /// Worker thread count; `None` uses the process default
    /// (`AF_NUM_THREADS` / detected parallelism). The result is
    /// identical for every setting — this knob only changes wall time.
    pub threads: Option<usize>,
}

impl CampaignConfig {
    /// Single-bit campaign at `rate` under `seed`, hardened decode.
    pub fn single_bit(rate: f64, seed: u64) -> Self {
        CampaignConfig {
            kind: FaultKind::SingleBit,
            rate,
            seed,
            policy: DecodePolicy::Harden,
            threads: None,
        }
    }

    fn spec_for_layer(&self, layer: usize) -> FaultSpec {
        FaultSpec {
            kind: self.kind,
            rate: self.rate,
            seed: self.seed ^ mix(layer as u64),
        }
    }
}

/// Aggregate outcome of one campaign cell (one format × width × rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignOutcome {
    /// Total elements across all layers.
    pub elements: u64,
    /// Words struck by the fault maps.
    pub faults_injected: u64,
    /// RMS error of the *clean* quantized weights vs. FP32 — the
    /// quantization floor the fault damage sits on top of.
    pub clean_rms: f64,
    /// RMS error of the corrupted-then-decoded weights vs. FP32.
    pub faulty_rms: f64,
    /// Corruption detections from the hardened decoder.
    pub stats: DecodeStats,
}

impl CampaignOutcome {
    /// Fault damage above the quantization floor.
    pub fn degradation(&self) -> f64 {
        self.faulty_rms - self.clean_rms
    }
}

/// Per-layer partial sums, merged in layer order by the caller.
struct LayerPartial {
    elements: u64,
    faults: u64,
    sq_clean: f64,
    sq_faulty: f64,
    stats: DecodeStats,
}

/// Run a storage-fault campaign for one format at word size `n` over a
/// set of weight tensors. Each layer is encoded with its own fitted
/// per-tensor codec (AdaptivFloat bias, BFP exponent, Uniform scale),
/// corrupted per the config, and decoded under the config's policy.
///
/// # Errors
///
/// Returns [`FormatError::InvalidBits`] if `n` is invalid for `format`.
pub fn run_weight_campaign(
    format: FormatKind,
    n: u32,
    layers: &[Vec<f32>],
    cfg: &CampaignConfig,
) -> Result<CampaignOutcome, FormatError> {
    run_layers(layers, cfg, |layer_idx, data| {
        let codec = StorageCodec::fit(format, n, data)?;
        let mut packed = codec.encode_slice(data);
        let (clean, _) = codec.decode_slice(&packed, DecodePolicy::Raw);
        let map = cfg.spec_for_layer(layer_idx).sample(data.len(), n);
        let faults = inject_packed(&mut packed, &map) as u64;
        let (faulty, stats) = codec.decode_slice(&packed, cfg.policy);
        Ok(partial(data, &clean, &faulty, faults, stats))
    })
}

/// Run the FP32 baseline campaign: the same fault model striking raw
/// IEEE-754 words (width 32) with no codec in between. The decode
/// policy maps to a guard over the layer's own value range: under
/// [`DecodePolicy::Harden`] non-finites repair to 0 and magnitudes are
/// clamped to the layer's clean maximum.
pub fn run_f32_campaign(layers: &[Vec<f32>], cfg: &CampaignConfig) -> CampaignOutcome {
    let result: Result<CampaignOutcome, FormatError> =
        run_layers(layers, cfg, |layer_idx, data| {
            let mut corrupted = data.clone();
            let map = cfg.spec_for_layer(layer_idx).sample(data.len(), 32);
            let faults = inject_f32(&mut corrupted, &map) as u64;
            let max_abs = data
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(0.0f32, |acc, v| acc.max(v.abs()));
            let mut stats = DecodeStats::new();
            for v in corrupted.iter_mut() {
                *v = stats.guard(cfg.policy, max_abs, *v);
            }
            Ok(partial(data, data, &corrupted, faults, stats))
        });
    result.expect("f32 campaign has no fallible geometry")
}

fn partial(
    reference: &[f32],
    clean: &[f32],
    faulty: &[f32],
    faults: u64,
    stats: DecodeStats,
) -> LayerPartial {
    let mut sq_clean = 0.0f64;
    let mut sq_faulty = 0.0f64;
    for ((&r, &c), &f) in reference.iter().zip(clean).zip(faulty) {
        let dc = (r - c) as f64;
        sq_clean += dc * dc;
        // A raw-policy campaign can leave NaN/∞ in the tensor; count
        // those as damage at the representable maximum of f64 rather
        // than poisoning the aggregate into NaN.
        let df = if f.is_finite() {
            (r - f) as f64
        } else {
            f64::MAX.sqrt()
        };
        sq_faulty += df * df;
    }
    LayerPartial {
        elements: reference.len() as u64,
        faults,
        sq_clean,
        sq_faulty,
        stats,
    }
}

/// Fan `work` out over the layers with the configured worker count and
/// merge partials in layer order (see the module docs for why).
fn run_layers<F>(
    layers: &[Vec<f32>],
    cfg: &CampaignConfig,
    work: F,
) -> Result<CampaignOutcome, FormatError>
where
    F: Fn(usize, &Vec<f32>) -> Result<LayerPartial, FormatError> + Sync,
{
    let threads = cfg
        .threads
        .unwrap_or_else(adaptivfloat::par::num_threads)
        .clamp(1, layers.len().max(1));
    let mut partials: Vec<Option<Result<LayerPartial, FormatError>>> =
        (0..layers.len()).map(|_| None).collect();
    if threads <= 1 {
        for (i, (layer, slot)) in layers.iter().zip(partials.iter_mut()).enumerate() {
            *slot = Some(work(i, layer));
        }
    } else {
        // Deal layers round-robin; each worker owns disjoint slots.
        let mut buckets: Vec<Vec<(usize, &Vec<f32>, &mut Option<_>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, (layer, slot)) in layers.iter().zip(partials.iter_mut()).enumerate() {
            buckets[i % threads].push((i, layer, slot));
        }
        std::thread::scope(|scope| {
            let work = &work;
            for bucket in buckets {
                scope.spawn(move || {
                    for (i, layer, slot) in bucket {
                        *slot = Some(work(i, layer));
                    }
                });
            }
        });
    }
    // Merge strictly in layer order — identical for every thread count.
    let mut out = CampaignOutcome {
        elements: 0,
        faults_injected: 0,
        clean_rms: 0.0,
        faulty_rms: 0.0,
        stats: DecodeStats::new(),
    };
    let mut sq_clean = 0.0f64;
    let mut sq_faulty = 0.0f64;
    for slot in partials {
        let p = slot.expect("every layer processed")?;
        out.elements += p.elements;
        out.faults_injected += p.faults;
        sq_clean += p.sq_clean;
        sq_faulty += p.sq_faulty;
        out.stats.merge(&p.stats);
    }
    if out.elements > 0 {
        out.clean_rms = (sq_clean / out.elements as f64).sqrt();
        out.faulty_rms = (sq_faulty / out.elements as f64).sqrt();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layers() -> Vec<Vec<f32>> {
        (0..7)
            .map(|l| {
                (0..1500)
                    .map(|i| (((i * 37 + l * 101) % 211) as f32 - 105.0) * 0.013)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let layers = toy_layers();
        for kind in FormatKind::ALL {
            let mut cfg = CampaignConfig::single_bit(0.01, 42);
            cfg.threads = Some(1);
            let serial = run_weight_campaign(kind, 8, &layers, &cfg).unwrap();
            cfg.threads = Some(8);
            let parallel = run_weight_campaign(kind, 8, &layers, &cfg).unwrap();
            assert_eq!(
                serial, parallel,
                "{kind}: campaign must be bit-identical at 1 vs 8 threads"
            );
            assert_eq!(serial.clean_rms.to_bits(), parallel.clean_rms.to_bits());
            assert_eq!(serial.faulty_rms.to_bits(), parallel.faulty_rms.to_bits());
        }
    }

    #[test]
    fn zero_rate_campaign_is_the_quantization_floor() {
        let layers = toy_layers();
        let cfg = CampaignConfig::single_bit(0.0, 1);
        let out = run_weight_campaign(FormatKind::AdaptivFloat, 8, &layers, &cfg).unwrap();
        assert_eq!(out.faults_injected, 0);
        assert_eq!(out.stats.repaired(), 0);
        assert_eq!(
            out.clean_rms.to_bits(),
            out.faulty_rms.to_bits(),
            "zero faults ⇒ faulty path bit-identical to clean path"
        );
    }

    #[test]
    fn damage_grows_with_rate() {
        let layers = toy_layers();
        let lo = run_weight_campaign(
            FormatKind::AdaptivFloat,
            8,
            &layers,
            &CampaignConfig::single_bit(1e-3, 5),
        )
        .unwrap();
        let hi = run_weight_campaign(
            FormatKind::AdaptivFloat,
            8,
            &layers,
            &CampaignConfig::single_bit(0.05, 5),
        )
        .unwrap();
        assert!(hi.faults_injected > lo.faults_injected);
        assert!(hi.degradation() > lo.degradation());
    }

    #[test]
    fn hardening_never_hurts_posit() {
        // Posit's NaR is the pathological raw decode; hardening caps the
        // damage, so hardened RMS ≤ raw RMS (with NaN damage priced in).
        let layers = toy_layers();
        let mut cfg = CampaignConfig::single_bit(0.02, 9);
        let hard = run_weight_campaign(FormatKind::Posit, 8, &layers, &cfg).unwrap();
        cfg.policy = DecodePolicy::Raw;
        let raw = run_weight_campaign(FormatKind::Posit, 8, &layers, &cfg).unwrap();
        assert!(hard.faulty_rms <= raw.faulty_rms);
    }

    #[test]
    fn f32_campaign_runs_and_detects() {
        let layers = toy_layers();
        let cfg = CampaignConfig::single_bit(0.01, 13);
        let out = run_f32_campaign(&layers, &cfg);
        assert!(out.faults_injected > 0);
        assert_eq!(out.clean_rms, 0.0, "FP32 has no quantization floor");
        assert!(out.faulty_rms > 0.0);
    }
}
