//! A splittable counter-based PRNG for thread-count-independent fault
//! maps.
//!
//! The determinism guarantee of this subsystem is: *the same campaign
//! seed produces a bit-identical fault map at any `AF_NUM_THREADS`
//! setting*. A conventional sequential generator cannot give that — the
//! draw order would depend on how elements are dealt to threads. Instead
//! every random decision is keyed by *what it is for*: the stream for
//! element `i` is derived as `SplitMix64(mix(seed) ⊕ mix(i))`, so any
//! thread can compute any element's stream in O(1) with no shared state
//! and no ordering sensitivity.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators") is used both as the mixing function and the per-stream
//! generator: its finalizer is a bijection on `u64` with full avalanche,
//! which is exactly what keying needs.

/// The SplitMix64 finalizer: a bijective full-avalanche mix of a `u64`.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A SplitMix64 stream: successive [`next_u64`](SplitMix64::next_u64)
/// calls mix successive counter values.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded directly from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The stream for decision domain `domain` of element `index` under
    /// campaign `seed` — computable by any thread, in any order, with
    /// identical results. `domain` separates independent decision kinds
    /// (e.g. "does a fault hit" vs "which bits") so adding draws to one
    /// never perturbs another.
    pub fn for_element(seed: u64, domain: u64, index: u64) -> Self {
        SplitMix64 {
            state: mix(seed) ^ mix(domain.wrapping_mul(0xA076_1D64_78BD_642F) ^ index),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        // mix() adds the increment itself, so mix the *previous* state to
        // keep the counter and the output whitening decoupled.
        mix(self.state)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `0..bound` (`bound > 0`) via 128-bit widening
    /// multiply — bias below 2⁻⁶⁴, fine for fault placement.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix(i)), "collision at {i}");
        }
    }

    #[test]
    fn element_streams_are_order_independent() {
        // Drawing element 5's stream before or after element 9's (or
        // from "another thread") yields the same values.
        let mut a5 = SplitMix64::for_element(42, 1, 5);
        let mut a9 = SplitMix64::for_element(42, 1, 9);
        let x5 = a5.next_u64();
        let x9 = a9.next_u64();
        let mut b9 = SplitMix64::for_element(42, 1, 9);
        let mut b5 = SplitMix64::for_element(42, 1, 5);
        assert_eq!(b9.next_u64(), x9);
        assert_eq!(b5.next_u64(), x5);
    }

    #[test]
    fn domains_are_decoupled() {
        let mut hit = SplitMix64::for_element(7, 0, 123);
        let mut bits = SplitMix64::for_element(7, 1, 123);
        assert_ne!(hit.next_u64(), bits.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 4096 uniforms is 0.5 ± a few percent.
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(3);
        let mut hits = [0u32; 7];
        for _ in 0..7000 {
            let v = g.next_below(7) as usize;
            hits[v] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 500, "bucket {i} starved: {h}");
        }
    }
}
