//! Property tests for the SEC-DED codec and [`ProtectedCodes`]: across
//! packed-code widths 4–16, protection must round-trip cleanly, correct
//! *every* possible single raw-bit flip (data and parity alike), and
//! flag *every* double-bit flip as detected-uncorrectable.

use adaptivfloat::PackedCodes;
use af_resilience::{decode_word, encode_word, ProtectedCodes, WordDecode, CODEWORD_BITS};
use proptest::prelude::*;

fn packed_from(width: u32, raw: &[u64]) -> PackedCodes {
    let mut p = PackedCodes::new(width);
    p.extend(raw.iter().copied()); // push masks high bits itself
    p
}

proptest! {
    /// Protection is transparent: wrapping a clean buffer changes no
    /// code, and a scrub over clean storage corrects nothing.
    #[test]
    fn protect_roundtrips_identity(
        width in 4u32..=16,
        raw in prop::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let clean = packed_from(width, &raw);
        let mut prot = ProtectedCodes::protect(clean.clone());
        prop_assert_eq!(prot.codes(), &clean);
        let report = prot.scrub();
        prop_assert_eq!((report.corrected, report.uncorrectable), (0, 0));
        prop_assert_eq!(prot.codes(), &clean);
        let (snapshot, read) = prot.decode();
        prop_assert_eq!(&snapshot, &clean);
        prop_assert_eq!((read.corrected, read.uncorrectable), (0, 0));
    }

    /// Every single raw-bit flip — all 72 positions of a randomly
    /// chosen word, covering data and parity bits — scrubs back to
    /// bit-identical storage and counts exactly one correction.
    #[test]
    fn every_single_bit_flip_corrects(
        width in 4u32..=16,
        raw in prop::collection::vec(0u64..u64::MAX, 1..64),
        word_sel in 0usize..1_000_000,
    ) {
        let clean = packed_from(width, &raw);
        let pristine = ProtectedCodes::protect(clean.clone());
        let word = word_sel % pristine.raw_words();
        for bit in 0..CODEWORD_BITS {
            let mut prot = pristine.clone();
            prot.flip_raw_bit(word, bit);
            // The read path sees corrected codes even before any scrub.
            let (snapshot, read) = prot.decode();
            prop_assert_eq!(&snapshot, &clean, "decode, bit {}", bit);
            prop_assert_eq!(read.uncorrectable, 0);
            // The scrub path repairs the store itself.
            let report = prot.scrub();
            prop_assert_eq!(report.corrected, 1, "bit {}", bit);
            prop_assert_eq!(report.uncorrectable, 0);
            prop_assert_eq!(prot.codes(), &clean, "scrub, bit {}", bit);
            prop_assert_eq!(prot.parity(), pristine.parity(), "parity, bit {}", bit);
        }
    }

    /// Every double-bit flip within one word — data/data, data/parity,
    /// or parity/parity — is detected as uncorrectable: never silently
    /// accepted, never miscorrected into different codes.
    #[test]
    fn every_double_bit_flip_is_detected(
        width in 4u32..=16,
        raw in prop::collection::vec(0u64..u64::MAX, 1..32),
        word_sel in 0usize..1_000_000,
        bit_a in 0u32..CODEWORD_BITS,
        bit_b in 0u32..CODEWORD_BITS,
    ) {
        prop_assume!(bit_a != bit_b);
        let clean = packed_from(width, &raw);
        let mut prot = ProtectedCodes::protect(clean.clone());
        let word = word_sel % prot.raw_words();
        prot.flip_raw_bit(word, bit_a);
        prot.flip_raw_bit(word, bit_b);
        let struck = prot.codes().clone();
        let (snapshot, read) = prot.decode();
        prop_assert_eq!(read.uncorrectable, 1, "bits {},{}", bit_a, bit_b);
        prop_assert_eq!(read.corrected, 0);
        prop_assert_eq!(&snapshot, &struck, "no miscorrection on read");
        let report = prot.scrub();
        prop_assert_eq!(report.uncorrectable, 1);
        prop_assert_eq!(report.corrected, 0);
        prop_assert_eq!(prot.codes(), &struck, "no miscorrection on scrub");
    }

    /// The word-level codec underneath agrees: syndrome decoding of any
    /// single data-bit flip recovers the original word exactly.
    #[test]
    fn word_codec_corrects_any_data_bit(
        data in 0u64..u64::MAX,
        bit in 0u32..64,
    ) {
        let parity = encode_word(data);
        prop_assert_eq!(decode_word(data, parity), WordDecode::Clean);
        let verdict = decode_word(data ^ (1u64 << bit), parity);
        prop_assert_eq!(verdict, WordDecode::CorrectedData(data));
    }

    /// Faults landing in padding bits (past `len × width` in the last
    /// word) are still corrected — the parity covers the full storage
    /// row, so padding corruption can never accumulate unnoticed and
    /// later combine with a data-bit flip into an uncorrectable pair.
    #[test]
    fn padding_bits_are_protected_too(
        width in 4u32..=16,
        len in 1usize..40,
    ) {
        let raw: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let clean = packed_from(width, &raw);
        let used_bits = len * width as usize;
        let last = clean.words().len() - 1;
        let pad_start = (used_bits - last * 64) as u32;
        prop_assume!(pad_start < 64);
        let mut prot = ProtectedCodes::protect(clean);
        prot.flip_raw_bit(last, pad_start); // first padding bit
        let report = prot.scrub();
        prop_assert_eq!(report.corrected, 1);
        prop_assert_eq!(prot.codes().words()[last] >> pad_start & 1, 0);
    }
}
