//! Domain scenario 1 — compress a trained Transformer's weights.
//!
//! Trains the miniature translation Transformer to its BLEU plateau, then
//! post-training-quantizes every layer at 8/6/4 bits in each of the
//! paper's five formats, and finally shows quantization-aware retraining
//! rescuing the 4-bit AdaptivFloat model.
//!
//! Run with `cargo run --release --example quantize_transformer`.

use adaptivfloat::FormatKind;
use af_models::model::retrain_quantized;
use af_models::{MiniTransformer, QuantizableModel};
use af_nn::QuantSpec;

fn main() {
    println!("training the mini Transformer (toy translation task)...");
    let mut model = MiniTransformer::new(7);
    model.train_steps(350);
    let fp32 = model.evaluate(16);
    println!("FP32 BLEU = {fp32:.1}\n");
    let snapshot = model.snapshot();

    println!("post-training quantization (all layers, including embeddings):");
    println!(
        "{:<14} {:>7} {:>7} {:>7}",
        "format", "8-bit", "6-bit", "4-bit"
    );
    for kind in FormatKind::ALL {
        let mut row = format!("{:<14}", kind.label());
        for bits in [8u32, 6, 4] {
            model.restore(&snapshot);
            model
                .quantize_weights_ptq(QuantSpec::new(kind, bits))
                .expect("paper bit widths are valid");
            row.push_str(&format!(" {:>7.1}", model.evaluate(16)));
        }
        println!("{row}");
    }

    println!("\nquantization-aware retraining at 4-bit AdaptivFloat:");
    model.restore(&snapshot);
    model.reset_optimizer();
    retrain_quantized(&mut model, QuantSpec::new(FormatKind::AdaptivFloat, 4), 120)
        .expect("valid spec");
    println!("QAR BLEU = {:.1} (vs FP32 {fp32:.1})", model.evaluate(16));
}
