//! Domain scenario 3 — why per-layer adaptation matters.
//!
//! Walks the paper-calibrated Transformer weight ensemble layer by layer,
//! showing how AdaptivFloat's exponent bias tracks each layer's magnitude
//! while a non-adaptive float (and a single shared-exponent BFP grid)
//! cannot fit narrow and wide layers at once.
//!
//! Run with `cargo run --release --example adaptive_range`.

use adaptivfloat::{rms_error, AdaptivFloat, BlockFloat, IeeeLikeFloat, NumberFormat, TensorStats};
use af_models::ensembles::EnsembleKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), adaptivfloat::FormatError> {
    let mut rng = StdRng::seed_from_u64(99);
    let ensemble = EnsembleKind::Transformer.generate(&mut rng, 10, 2048);
    let af = AdaptivFloat::new(6, 3)?;
    let fl = IeeeLikeFloat::new(6, 3)?;
    let bfp = BlockFloat::new(6)?;
    println!("Transformer-like ensemble, 6-bit quantization per layer\n");
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "layer", "|max|", "exp_bias", "AdaptivF", "Float", "BFP"
    );
    let mut totals = (0.0f64, 0.0f64, 0.0f64);
    for (name, w) in &ensemble.layers {
        let stats = TensorStats::from_slice(w);
        let params = af.params_for(w);
        let e_af = rms_error(w, &af.quantize_slice(w));
        let e_fl = rms_error(w, &fl.quantize_slice(w));
        let e_bfp = rms_error(w, &bfp.quantize_slice(w));
        totals.0 += e_af;
        totals.1 += e_fl;
        totals.2 += e_bfp;
        println!(
            "{:<22} {:>9.3} {:>9} {:>10.5} {:>10.5} {:>10.5}",
            name, stats.abs_max, params.exp_bias, e_af, e_fl, e_bfp
        );
    }
    let n = ensemble.layers.len() as f64;
    println!(
        "\nmean rms error: AdaptivFloat {:.5}, Float {:.5}, BFP {:.5}",
        totals.0 / n,
        totals.1 / n,
        totals.2 / n
    );
    println!(
        "\nThe exponent bias shifts by {} binades across layers — that is the\n\
         dynamic range a fixed-format encoding has to cover all at once.",
        {
            let biases: Vec<i32> = ensemble
                .layers
                .iter()
                .map(|(_, w)| af.params_for(w).exp_bias)
                .collect();
            biases.iter().max().expect("nonempty") - biases.iter().min().expect("nonempty")
        }
    );
    Ok(())
}
