//! Domain scenario 2 — the hardware co-design.
//!
//! Builds the NVDLA-like INT PE and the proposed HFINT PE, prints their
//! structural bills of materials, sweeps vector sizes (Figure 7), runs
//! the 4-PE accelerator on the 100-timestep LSTM workload (Table 4), and
//! drives the bit-accurate HFINT datapath to show the integer
//! accumulation of AdaptivFloat products is exact.
//!
//! Run with `cargo run --release --example hfint_accelerator`.

use adaptivfloat::{AdaptivFloat, NumberFormat};
use af_hw::arith::hfint_dot;
use af_hw::{Accelerator, CostParams, LstmWorkload, PeConfig, PeKind, PeModel};

fn main() {
    let params = CostParams::finfet16();
    // --- the two 8-bit PEs ---
    for kind in [PeKind::Int, PeKind::HfInt] {
        let pe = PeModel::new(kind, PeConfig::paper(8, 16), &params);
        println!(
            "{}: {:.2} fJ/op, {:.3} mm² datapath, {:.2} TOPS/mm²",
            pe.name(),
            pe.energy_per_op_fj(),
            pe.datapath_area_mm2(),
            pe.perf_per_area()
        );
    }
    // --- vector-size sweep (Figure 7 shape) ---
    println!("\nper-op energy across MAC vector sizes (fJ/op):");
    println!("{:<12} {:>8} {:>8} {:>8}", "datapath", "K=4", "K=8", "K=16");
    for (kind, n) in [(PeKind::Int, 8u32), (PeKind::HfInt, 8)] {
        let mut row = format!(
            "{:<12}",
            PeModel::new(kind, PeConfig::paper(n, 4), &params).name()
        );
        for k in [4u32, 8, 16] {
            let pe = PeModel::new(kind, PeConfig::paper(n, k), &params);
            row.push_str(&format!(" {:>8.2}", pe.energy_per_op_fj()));
        }
        println!("{row}");
    }
    // --- accelerator rollup (Table 4) ---
    println!("\naccelerator PPA on 100 LSTM timesteps (256 hidden):");
    let w = LstmWorkload::paper();
    for kind in [PeKind::Int, PeKind::HfInt] {
        let r = Accelerator::paper_system(kind, 8, 16).run(&w);
        println!(
            "4× {:<12} {:6.2} mW  {:5.2} mm²  {:5.1} µs  {:6.0} GOPS",
            r.name, r.power_mw, r.area_mm2, r.time_us, r.gops
        );
    }
    // --- bit-accurate datapath ---
    let fmt = AdaptivFloat::new(8, 3).expect("valid format");
    let wv: Vec<f32> = (0..256)
        .map(|i| ((i * 31 % 61) as f32 - 30.0) * 0.03)
        .collect();
    let av: Vec<f32> = (0..256)
        .map(|i| ((i * 17 % 53) as f32 - 26.0) * 0.02)
        .collect();
    let wp = fmt.params_for(&wv);
    let ap = fmt.params_for(&av);
    let wc: Vec<u32> = wv.iter().map(|&v| fmt.encode_with(&wp, v)).collect();
    let ac: Vec<u32> = av.iter().map(|&v| fmt.encode_with(&ap, v)).collect();
    let (acc, value) = hfint_dot(&fmt, &wp, &ap, &wc, &ac);
    let exact: f64 = fmt
        .quantize_slice(&wv)
        .iter()
        .zip(fmt.quantize_slice(&av).iter())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum();
    println!(
        "\nbit-accurate HFINT MAC over 256 elements:\n  integer accumulator = {acc}\n  \
         represented value   = {value:.9}\n  exact dot product    = {exact:.9}\n  \
         difference          = {:.3e}",
        (value - exact).abs()
    );
}
