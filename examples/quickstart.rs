//! Quickstart: quantize a weight tensor with AdaptivFloat and compare it
//! against the other formats the paper evaluates.
//!
//! Run with `cargo run --release --example quickstart`.

use adaptivfloat::{rms_error, AdaptivFloat, FormatKind, NumberFormat, TensorStats};

fn main() -> Result<(), adaptivfloat::FormatError> {
    // A small weight tensor with one order-of-magnitude outlier — the
    // situation the paper's introduction motivates.
    let weights: Vec<f32> = (0..64)
        .map(|i| ((i as f32 * 0.7).sin()) * 0.4)
        .chain([6.3f32, -5.1])
        .collect();
    let stats = TensorStats::from_slice(&weights);
    println!(
        "tensor: {} values, range [{:.2}, {:.2}]\n",
        stats.count, stats.min, stats.max
    );

    // --- AdaptivFloat<8,3>: Algorithm 1 in three lines ---
    let fmt = AdaptivFloat::new(8, 3)?;
    let params = fmt.params_for(&weights);
    let q = fmt.quantize_slice(&weights);
    println!(
        "AdaptivFloat<8,3>: exp_bias = {}, representable |v| in [{:.4}, {:.1}]",
        params.exp_bias,
        params.value_min(),
        params.value_max()
    );
    println!("  rms error = {:.5}", rms_error(&weights, &q));

    // Bit-level storage: pack the whole tensor to 8-bit codes.
    let packed = fmt.quantize_tensor(&weights);
    println!(
        "  packed to {} bytes ({} bits/value) + one 4-bit exp_bias register\n",
        packed.packed_bytes(),
        fmt.n()
    );

    // --- the same tensor through every format of the paper, 8 and 4 bit ---
    println!("format comparison (rms error vs FP32):");
    println!("{:<16} {:>10} {:>10}", "format", "8-bit", "4-bit");
    for kind in FormatKind::ALL {
        let e8 = rms_error(&weights, &kind.build(8)?.quantize_slice(&weights));
        let e4 = rms_error(&weights, &kind.build(4)?.quantize_slice(&weights));
        println!("{:<16} {:>10.5} {:>10.5}", kind.label(), e8, e4);
    }
    Ok(())
}
