#!/usr/bin/env bash
# The repo's CI gate: formatting, lints, the full test suite, and a
# quick fault_sweep smoke run that checks the emitted JSON is sound.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault_sweep smoke (--quick) =="
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
cargo run --release -q -p af-bench --bin fault_sweep -- \
    --quick --out "$TMP_DIR/BENCH_resilience.json" >/dev/null
python3 - "$TMP_DIR/BENCH_resilience.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "fault_sweep", doc.get("bench")
assert doc["storage"], "no storage cells"
assert doc["end_task"], "no end-task cells"
zero = [c for c in doc["storage"] if c["rate"] == 0]
assert zero and all(c["faults_injected"] == 0 for c in zero)
print(f"ok: {len(doc['storage'])} storage cells, {len(doc['end_task'])} end-task cells")
PY

echo "CI green."
