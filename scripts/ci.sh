#!/usr/bin/env bash
# The repo's CI gate: formatting, lints, the full test suite, and a
# quick fault_sweep smoke run that checks the emitted JSON is sound.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== plan API boundary (no backend internals outside crates/core) =="
# Everything downstream must quantize through NumberFormat::plan /
# QuantPlan; reaching for the LUT or kernel entry points directly skips
# the planner's backend choice and its bit-identity guarantees. The
# cache-observability surface (lut::prewarm, lut::write_lock_acquisitions,
# lut::is_warm) stays fair game.
if grep -rnE "lut::(quantize_slice|cached|lookup)|LutQuantizer|kernels::|FastQuantizer" \
    crates --include="*.rs" | grep -v "^crates/core/"; then
    echo "error: backend internals referenced outside crates/core (use NumberFormat::plan)" >&2
    exit 1
fi
echo "ok: no backend internals outside crates/core"

echo "== cargo test =="
cargo test --workspace -q

echo "== bit-identity under AF_NUM_THREADS=1 =="
# The batched-equals-per-sample and plan-equals-every-backend invariants
# must hold at any thread count; re-run the pinning tests with the
# runtime forced to a single thread.
AF_NUM_THREADS=1 cargo test -q -p adaptivfloat --test plan_matches_backends
AF_NUM_THREADS=1 cargo test -q -p af-models --test frozen_batch
AF_NUM_THREADS=1 cargo test -q -p af-models --test alloc_regression
AF_NUM_THREADS=1 cargo test -q --test serve_e2e
# The supervisor/scrubber/self-healing paths must also hold when the
# runtime is forced serial (panic propagation takes the serial path).
AF_NUM_THREADS=1 cargo test -q --test serve_selfheal_e2e
# Crash recovery must stay bit-identical with the runtime forced serial.
AF_NUM_THREADS=1 cargo test -q --test store_e2e

echo "== bit-identity under AF_FORCE_SCALAR=1 =="
# Every SIMD path must be bit-identical to its scalar twin, and every
# consumer result must be independent of which leg the dispatcher picks.
# Run the pinning suites on both legs: the default run above covered the
# vector leg; this one forces the scalar fallbacks.
AF_FORCE_SCALAR=1 cargo test -q -p adaptivfloat --test simd_bitexact
AF_FORCE_SCALAR=1 cargo test -q -p adaptivfloat --test kernel_bit_exact
AF_FORCE_SCALAR=1 cargo test -q -p adaptivfloat --test plan_matches_backends
AF_FORCE_SCALAR=1 cargo test -q -p af-tensor --test packed_gemm
AF_FORCE_SCALAR=1 cargo test -q -p af-models --test fused_gemm
AF_FORCE_SCALAR=1 cargo test -q --test serve_e2e

echo "== fault_sweep smoke (--quick) =="
TMP_DIR="$(mktemp -d)"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$TMP_DIR"' EXIT
cargo run --release -q -p af-bench --bin fault_sweep -- \
    --quick --out "$TMP_DIR/BENCH_resilience.json" >/dev/null
python3 - "$TMP_DIR/BENCH_resilience.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "fault_sweep", doc.get("bench")
assert doc["storage"], "no storage cells"
assert doc["end_task"], "no end-task cells"
zero = [c for c in doc["storage"] if c["rate"] == 0]
assert zero and all(c["faults_injected"] == 0 for c in zero)
# The SEC-DED protected sweep must show the ECC actually working: at a
# nonzero BER the protected arms correct words, the unprotected arms
# report no ECC activity, and any uncorrectable words are counted
# (never silently dropped).
prot = doc["protected"]
assert prot, "no protected cells"
hot = [c for c in prot if c["protected"] and c["ber"] >= 1e-3]
assert hot and all(c["corrected"] > 0 for c in hot), "SEC-DED never corrected"
bare = [c for c in prot if not c["protected"]]
assert bare and all(c["corrected"] == 0 and c["uncorrectable"] == 0 for c in bare)
assert all(c["uncorrectable"] >= 0 for c in prot)
print(
    f"ok: {len(doc['storage'])} storage cells, {len(doc['end_task'])} end-task cells, "
    f"{len(prot)} protected cells "
    f"({sum(c['corrected'] for c in prot)} corrected, "
    f"{sum(c['uncorrectable'] for c in prot)} uncorrectable)"
)
PY

echo "== serve_load smoke (--quick) =="
cargo run --release -q -p af-bench --bin serve_load -- \
    --quick --out "$TMP_DIR/BENCH_serving.json" >/dev/null
python3 - "$TMP_DIR/BENCH_serving.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "serve_load", doc.get("bench")
assert doc["cells"], "no serving cells"
for c in doc["cells"]:
    assert c["completed"] > 0, c
    assert c["p50_us"] <= c["p95_us"] <= c["p99_us"], c
# The fused packed-GEMM comparison pair must be present, and the fused
# twin must actually stream packed weight bytes (< its dense twin).
fused = [c for c in doc["cells"] if c["fused"]]
assert fused, "no fused-GEMM cells in quick serving run"
for f in fused:
    dense = [
        c for c in doc["cells"]
        if not c["fused"] and c["weight_format"] == f["weight_format"]
        and c["max_batch"] == f["max_batch"]
    ]
    assert dense, f"no dense twin for {f['variant']}"
    assert f["weight_bytes"] * 3 < dense[0]["weight_bytes"], (
        f"fused weight bytes not reduced: {f['weight_bytes']} vs "
        f"{dense[0]['weight_bytes']}"
    )
# The durable-store timing section: recovery happened, bit-identically.
store = doc["store"]
assert store["bit_identical"] is True, store
assert store["variants"] >= 3, store
assert store["cold_register_us"] > 0, store
assert store["warm_open_wal_us"] > 0, store
assert store["warm_open_ckpt_us"] > 0, store
print(f"ok: {len(doc['cells'])} serving cells ({len(fused)} fused), store timed")
PY

echo "== crash-recovery smoke (kill -9) =="
cargo build --release -q -p af-bench --bin store_crash
CRASH_BIN="target/release/store_crash"
STORE_ROOT="$TMP_DIR/store"
READY="$TMP_DIR/ready"

wait_ready() {
    for _ in $(seq 1 150); do
        [ -s "$READY" ] && return 0
        sleep 0.1
    done
    echo "error: serving process never became ready" >&2
    return 1
}

# Round 1: fresh store, register, take traffic, record the bits.
"$CRASH_BIN" serve --root "$STORE_ROOT" --ready-file "$READY" \
    2>"$TMP_DIR/serve1.log" &
SERVE_PID=$!
wait_ready
"$CRASH_BIN" probe --addr "$(cat "$READY")" \
    --out "$TMP_DIR/before.bits" >"$TMP_DIR/before.stats"
# The crash: no shutdown, no checkpoint — SIGKILL mid-serving.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -f "$READY"

# Round 2: restart over the same root and re-probe.
"$CRASH_BIN" serve --root "$STORE_ROOT" --ready-file "$READY" \
    2>"$TMP_DIR/serve2.log" &
SERVE_PID=$!
wait_ready
"$CRASH_BIN" probe --addr "$(cat "$READY")" \
    --out "$TMP_DIR/after.bits" >"$TMP_DIR/after.stats"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# Every response after the kill must be byte-identical to before it.
diff "$TMP_DIR/before.bits" "$TMP_DIR/after.bits"
python3 - "$TMP_DIR/after.stats" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
store = doc["store"]
assert store is not None, "no store section in /stats"
assert store["recovered_variants"] == 3, store
assert store["wal_replays"] >= 3, store
assert store["journal_errors"] == 0, store
assert store["torn_tail_bytes_dropped"] == 0, store
names = {v["id"] for v in doc["variants"]}
assert names == {"crash/fp32", "crash/protected", "crash/fused"}, names
gens = {v["id"]: v["generation"] for v in doc["variants"]}
assert all(g == 0 for g in gens.values()), gens
protected = [v for v in doc["variants"] if v["protected"]]
assert len(protected) == 1, "exactly one SEC-DED protected variant"
fused = [v for v in doc["variants"] if v["fused_gemm"]]
assert len(fused) == 1 and fused[0]["fused_layers"] > 0, "fused variant lost"
print(
    f"ok: bit-identical across kill -9, {store['recovered_variants']} variants "
    f"recovered from {store['wal_replays']} WAL records"
)
PY

echo "CI green."
