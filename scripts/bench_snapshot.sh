#!/usr/bin/env bash
# Snapshot the kernel micro-bench medians into BENCH_kernels.json, the
# fault-injection sweep into BENCH_resilience.json, and the serving
# load test into BENCH_serving.json, then stamp every BENCH_*.json with
# the commit, configured thread count, and host parallelism so a
# snapshot is interpretable after the machine or checkout changes.
#
# Runs the `quantize_kernels` bench twice — once pinned to a single
# thread (AF_NUM_THREADS=1, isolating the kernel speedups) and once with
# the default thread count (adding the scoped-thread fan-out) — then
# assembles the per-bench JSON records the vendored criterion shim emits
# (via AF_BENCH_JSON) into one machine-readable snapshot with the commit
# and thread counts attached.
#
# Usage: scripts/bench_snapshot.sh [bench-name-filter]

set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"
OUT="BENCH_kernels.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

run_bench() { # <threads ('' = default)> <records-file>
    AF_NUM_THREADS="$1" AF_BENCH_JSON="$2" \
        cargo bench -q -p af-bench --bench quantize_kernels -- ${FILTER:+"$FILTER"}
}

echo "== single-thread run (AF_NUM_THREADS=1) =="
run_bench 1 "$TMP_DIR/t1.jsonl"
echo
echo "== default-threads run =="
run_bench "" "$TMP_DIR/all.jsonl"

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
HOST_THREADS="$(nproc 2>/dev/null || echo 1)"

COMMIT="$COMMIT" HOST_THREADS="$HOST_THREADS" TMP_DIR="$TMP_DIR" OUT="$OUT" \
python3 - <<'PY'
import json, os

tmp, out = os.environ["TMP_DIR"], os.environ["OUT"]

def load(path):
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]

t1 = load(os.path.join(tmp, "t1.jsonl"))
allt = load(os.path.join(tmp, "all.jsonl"))

def median_ns(records, name):
    for r in records:
        if r["name"] == name:
            return r["median_ns"]
    return None

fast = median_ns(t1, "adaptivfloat_1m/fast/8")
ref = median_ns(t1, "adaptivfloat_1m/reference/8")
speedup = round(ref / fast, 2) if fast and ref else None

def ratio(records, name_slow, name_fast):
    slow, fast = median_ns(records, name_slow), median_ns(records, name_fast)
    return round(slow / fast, 2) if slow and fast else None

# SIMD-vs-scalar rows from the single-thread run: dispatcher leg is the
# only variable (same plan, same backend, one thread).
simd_speedup_quantize_af8 = ratio(
    t1, "simd_vs_scalar/quantize_adaptivfloat8/scalar",
    "simd_vs_scalar/quantize_adaptivfloat8/simd")
simd_speedup_lut_posit8 = ratio(
    t1, "simd_vs_scalar/quantize_posit8_lut/scalar",
    "simd_vs_scalar/quantize_posit8_lut/simd")
simd_speedup_scan = ratio(
    t1, "simd_vs_scalar/scan_abs/scalar", "simd_vs_scalar/scan_abs/simd")
fused_vs_dequantize_gemm = ratio(
    t1, "packed_gemm/dequantize_dense/8x512x1024",
    "packed_gemm/fused/8x512x1024")

snapshot = {
    "commit": os.environ["COMMIT"],
    "host_threads": int(os.environ["HOST_THREADS"]),
    "single_thread_speedup_adaptivfloat8_1m": speedup,
    "simd_speedup_quantize_af8": simd_speedup_quantize_af8,
    "simd_speedup_lut_posit8": simd_speedup_lut_posit8,
    "simd_speedup_scan_abs": simd_speedup_scan,
    "fused_vs_dequantize_gemm_8x512x1024": fused_vs_dequantize_gemm,
    "runs": [
        {"threads": 1, "benches": t1},
        {"threads": int(os.environ["HOST_THREADS"]), "benches": allt},
    ],
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")

print(f"wrote {out} ({len(t1)} + {len(allt)} bench records)")
if speedup is not None:
    print(f"single-thread fast vs reference (AdaptivFloat<8,3>, 1M elems): {speedup}x")
if simd_speedup_quantize_af8 is not None:
    print(f"SIMD vs scalar quantize (AdaptivFloat<8,3>, 64K): {simd_speedup_quantize_af8}x")
if fused_vs_dequantize_gemm is not None:
    print(f"fused vs dequantize+GEMM (8x512x1024): {fused_vs_dequantize_gemm}x")
PY

echo
echo "== resilience snapshot (fault_sweep --quick) =="
# Includes the SEC-DED protected-vs-unprotected sweep ("protected"
# section: end-task metric plus corrected/uncorrectable vs bit BER).
cargo run --release -q -p af-bench --bin fault_sweep -- \
    --quick --out BENCH_resilience.json >/dev/null
echo "wrote BENCH_resilience.json (storage, end_task, protected sections)"

echo
echo "== serving snapshot (serve_load) =="
# Keep the previous snapshot so the new latencies can be compared
# against it: a plan-pipeline or batcher change must not regress p50/p95.
if [ -f BENCH_serving.json ]; then
    cp BENCH_serving.json "$TMP_DIR/serving_before.json"
fi
cargo run --release -q -p af-bench --bin serve_load -- \
    --out BENCH_serving.json
echo "wrote BENCH_serving.json"
# Surface the durable-store restart cost next to the serving numbers:
# cold registration (quantize everything from the f32 master) vs
# reopening the persisted store (WAL replay / checkpoint load).
python3 - <<'PY'
import json

with open("BENCH_serving.json") as f:
    s = json.load(f).get("store")
if s:
    assert s["bit_identical"] is True, s
    print(f"durable store ({s['variants']} variants): "
          f"cold register {s['cold_register_us']}us, "
          f"warm open wal {s['warm_open_wal_us']}us, "
          f"warm open ckpt {s['warm_open_ckpt_us']}us")
PY
if [ -f "$TMP_DIR/serving_before.json" ]; then
    BEFORE="$TMP_DIR/serving_before.json" python3 - <<'PY'
import json, os

with open(os.environ["BEFORE"]) as f:
    before = {
        (c["variant"], c["max_batch"], c["max_wait_us"]): c
        for c in json.load(f)["cells"]
    }
with open("BENCH_serving.json") as f:
    after = json.load(f)["cells"]

print("serving latency before -> after:")
for c in after:
    key = (c["variant"], c["max_batch"], c["max_wait_us"])
    old = before.get(key)
    if old is None:
        print(f"  {c['variant']} b={c['max_batch']}: new cell, "
              f"p50={c['p50_us']}us p95={c['p95_us']}us")
        continue
    print(f"  {c['variant']} b={c['max_batch']}: "
          f"p50 {old['p50_us']} -> {c['p50_us']}us, "
          f"p95 {old['p95_us']} -> {c['p95_us']}us")
PY
fi

echo
echo "== stamping provenance metadata into BENCH_*.json =="
# Every snapshot records which vector ISA produced it: numbers from an
# AVX2 host and a forced-scalar run are not comparable.
SIMD_JSON="$(cargo run --release -q -p af-bench --bin simd_report)"
COMMIT="$COMMIT" HOST_THREADS="$HOST_THREADS" SIMD_JSON="$SIMD_JSON" \
AF_THREADS="${AF_NUM_THREADS:-}" python3 - <<'PY'
import glob, json, os

meta = {
    "git_sha": os.environ["COMMIT"],
    "af_num_threads": os.environ["AF_THREADS"] or "default",
    "host_parallelism": int(os.environ["HOST_THREADS"]),
}
simd = json.loads(os.environ["SIMD_JSON"])
for path in sorted(glob.glob("BENCH_*.json")):
    with open(path) as f:
        doc = json.load(f)
    doc["meta"] = meta
    doc["simd"] = simd
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"stamped {path} (isa={simd['isa']})")
PY
