//! Self-healing serving, end to end: faults injected into a *live*
//! variant's SEC-DED protected weight storage over real TCP
//! connections, exercising the four recovery paths the subsystem
//! promises:
//!
//! 1. **Scrub repair** — a single-bit upset in the live store is
//!    repaired by the background scrubber, and storage decodes back to
//!    exactly the weights being served (responses stay bit-identical).
//! 2. **Rebuild + hot swap** — an uncorrectable (double-bit) upset
//!    triggers a rebuild from the retained f32 master and a
//!    generation-bumped snapshot swap, with **no** in-flight request
//!    failing.
//! 3. **Worker supervision** — a panicking lane worker fails its batch
//!    with an explicit `500` (never a hang) and is restarted.
//! 4. **Client retry** — a deterministic `429` shed is absorbed by the
//!    client's bounded backoff-with-jitter retry, within one deadline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptivfloat::FormatKind;
use af_models::{FrozenMlp, ModelFamily};
use af_serve::{
    Client, ClientError, Engine, EngineConfig, ModelRegistry, RetryPolicy, Server, VariantSpec,
};

const VARIANT: &str = "resnet/af8";
const IN_DIM: usize = 16;

fn protected_registry() -> Arc<ModelRegistry> {
    let reg = ModelRegistry::new();
    reg.register(
        &VariantSpec::quantized(
            VARIANT,
            ModelFamily::ResNet,
            FormatKind::AdaptivFloat,
            8,
            17,
            &[IN_DIM, 24, 6],
        )
        .protected(),
    )
    .unwrap();
    Arc::new(reg)
}

fn serve(cfg: EngineConfig) -> (Server, Arc<ModelRegistry>) {
    let reg = protected_registry();
    let engine = Arc::new(Engine::start(Arc::clone(&reg), cfg));
    let server = Server::bind("127.0.0.1:0", engine).expect("bind ephemeral port");
    (server, reg)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Extract the first integer following `"key":` in a JSON document.
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let i = json
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing from {json}"))
        + pat.len();
    json[i..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer stats field")
}

#[test]
fn background_scrubber_repairs_live_fault_with_bit_identical_responses() {
    let (server, reg) = serve(EngineConfig {
        scrub_period: Some(Duration::from_millis(20)),
        ..EngineConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let x = FrozenMlp::synth_inputs(5, 1, IN_DIM);
    let baseline = client.infer(VARIANT, x.row(0)).unwrap();

    // Strike one data bit of the live variant's protected storage.
    let variant = reg.get(VARIANT).unwrap();
    variant
        .protected
        .as_ref()
        .expect("variant is protected")
        .lock()
        .unwrap()
        .flip_bit(0, 1, 11);

    // The background scrubber (no manual scrub here) must find and
    // repair it within a few periods.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats_json().unwrap();
        if json_u64(&stats, "scrub_passes") >= 1 && json_u64(&stats, "ecc_corrected") == 1 {
            assert_eq!(json_u64(&stats, "ecc_uncorrectable"), 0);
            assert_eq!(
                json_u64(&stats, "rebuilds"),
                0,
                "no rebuild for a single bit"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "scrubber never repaired: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Responses are bit-identical throughout — and stay so for a
    // snapshot rebuilt from the repaired storage, proving the store
    // decodes to exactly the weights being served.
    assert_eq!(
        bits(&client.infer(VARIANT, x.row(0)).unwrap()),
        bits(&baseline)
    );
    let refreshed = reg.refresh_from_storage(VARIANT).unwrap();
    assert_eq!(bits(&refreshed.model.evaluate(x.row(0))), bits(&baseline));
    server.shutdown();
}

#[test]
fn uncorrectable_fault_rebuilds_and_hot_swaps_without_failing_in_flight_requests() {
    let (server, reg) = serve(EngineConfig::default());
    let engine = Arc::clone(server.engine());
    let mut client = Client::connect(server.addr()).unwrap();
    let x = FrozenMlp::synth_inputs(6, 1, IN_DIM);
    let baseline = client.infer(VARIANT, x.row(0)).unwrap();

    // Double-bit upset in one storage word: beyond SEC-DED correction.
    {
        let variant = reg.get(VARIANT).unwrap();
        let mut store = variant.protected.as_ref().unwrap().lock().unwrap();
        store.flip_bit(0, 2, 7);
        store.flip_bit(0, 2, 33);
    }

    // Keep requests in flight from several connections while the scrub
    // detects the uncorrectable word, rebuilds from the master, and hot
    // swaps the snapshot.
    let addr = server.addr();
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let x = FrozenMlp::synth_inputs(6, 1, IN_DIM);
                let mut outputs = Vec::new();
                for _ in 0..40 {
                    outputs.push(c.infer(VARIANT, x.row(0)).unwrap_or_else(|e| {
                        panic!("in-flight request failed during rebuild (thread {t}): {e}")
                    }));
                }
                outputs
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    let summary = engine.scrub_now();
    assert_eq!(summary.uncorrectable, 1);
    assert_eq!(summary.rebuilds, 1);
    for w in workers {
        for out in w.join().unwrap() {
            assert_eq!(bits(&out), bits(&baseline), "every reply bit-identical");
        }
    }

    // The rebuild republished: generation bumped, storage clean, and
    // the swapped snapshot answers the same bits.
    let current = reg.get(VARIANT).unwrap();
    assert_eq!(current.generation, 1);
    assert_eq!(
        bits(&client.infer(VARIANT, x.row(0)).unwrap()),
        bits(&baseline)
    );
    let stats = client.stats_json().unwrap();
    assert_eq!(json_u64(&stats, "rebuilds"), 1);
    assert_eq!(json_u64(&stats, "ecc_uncorrectable"), 1);
    assert!(stats.contains("\"protected\":true"));
    assert!(stats.contains("\"generation\":1"));
    server.shutdown();
}

#[test]
fn panicked_worker_answers_500_then_recovers_and_counts_the_restart() {
    let trigger = -777.25f32;
    let (server, reg) = serve(EngineConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        panic_trigger: Some(trigger),
        ..EngineConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let mut poison = vec![0.0f32; IN_DIM];
    poison[0] = trigger;
    match client.infer(VARIANT, &poison) {
        Err(ClientError::Http { status: 500, .. }) => {}
        other => panic!("poisoned batch must answer 500, got {other:?}"),
    }
    // Same connection, same lane: the restarted worker serves correct
    // bits immediately.
    let x = FrozenMlp::synth_inputs(7, 1, IN_DIM);
    let got = client.infer(VARIANT, x.row(0)).unwrap();
    let direct = reg.get(VARIANT).unwrap().model.evaluate(x.row(0));
    assert_eq!(bits(&got), bits(&direct));
    let stats = client.stats_json().unwrap();
    assert_eq!(json_u64(&stats, "worker_restarts"), 1);
    server.shutdown();
}

#[test]
fn client_retry_recovers_from_deterministic_shed_within_one_deadline() {
    // One-deep queue, one-wide batches, slow service: two parked
    // requests make the very next arrival a deterministic 429.
    let (server, reg) = serve(EngineConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_cap: 1,
        service_delay: Duration::from_millis(120),
        ..EngineConfig::default()
    });
    let addr = server.addr();
    let park = || {
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let x = FrozenMlp::synth_inputs(8, 1, IN_DIM);
            c.infer(VARIANT, x.row(0)).unwrap()
        })
    };
    // Stagger the two parked requests so the first reaches the worker
    // (now sleeping out its service delay) before the second takes the
    // single queue slot.
    let first = park();
    std::thread::sleep(Duration::from_millis(40));
    let second = park();
    std::thread::sleep(Duration::from_millis(40));
    let parked = [first, second];

    let mut client = Client::connect(addr).unwrap();
    let x = FrozenMlp::synth_inputs(8, 1, IN_DIM);
    // Without retry, the saturated lane sheds.
    match client.infer(VARIANT, x.row(0)) {
        Err(ClientError::Http { status: 429, .. }) => {}
        other => panic!("saturated lane must shed with 429, got {other:?}"),
    }
    // With retry, backoff rides out the shed inside one deadline.
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(40),
        max_backoff: Duration::from_millis(200),
        jitter_seed: 42,
    };
    let (out, attempts) = client
        .infer_with_retry(VARIANT, x.row(0), Duration::from_secs(3), &policy)
        .unwrap();
    assert!(attempts > 1, "the shed must have forced at least one retry");
    let direct = reg.get(VARIANT).unwrap().model.evaluate(x.row(0));
    assert_eq!(bits(&out), bits(&direct));
    for p in parked {
        assert_eq!(bits(&p.join().unwrap()), bits(&direct));
    }
    assert!(json_u64(&client.stats_json().unwrap(), "shed") >= 1);
    server.shutdown();
}
