//! Smoke tests for the experiment regenerators that do not require model
//! training (the training-backed ones are covered in `af-bench`'s own
//! test suite and the `--ignored` long tests).

#[test]
fn fig1_through_fig3_render() {
    let f1 = af_bench::fig1::run(true);
    assert!(f1.rendered.contains("Transformer"));
    let f2 = af_bench::fig2::run(true);
    assert!(f2.rendered.contains("AdaptivFloat"));
    let f3 = af_bench::fig3::run(true);
    assert!(f3.rendered.contains("exp_bias = -2"));
}

#[test]
fn fig4_reproduces_the_rms_ordering() {
    use adaptivfloat::FormatKind;
    use af_models::ensembles::EnsembleKind;
    let fig = af_bench::fig4::run(true);
    // Headline: AdaptivFloat's mean RMS is the lowest at every (model,
    // bits) combination.
    for model in EnsembleKind::EVALUATED {
        for bits in [4, 6, 8] {
            let af = fig.cell(model, FormatKind::AdaptivFloat, bits).stats.mean;
            for other in FormatKind::ALL {
                let o = fig.cell(model, other, bits).stats.mean;
                assert!(af <= o * 1.001, "{model} {bits}b {other}: {af} vs {o}");
            }
        }
    }
}

#[test]
fn hardware_experiments_render_and_hold_shape() {
    let f5 = af_bench::fig5::run(true);
    assert!(f5.hfint_datapath_error < 1e-9);
    let f6 = af_bench::fig6::run(true);
    assert_eq!(f6.breakdown.0, 512);
    let f7 = af_bench::fig7::run(true);
    assert_eq!(f7.points.len(), 12);
    let t4 = af_bench::table4::run(true);
    assert!(t4.hfint.power_mw < t4.int.power_mw);
    assert!(t4.hfint.area_mm2 > t4.int.area_mm2);
}

#[test]
fn ablations_confirm_design_choices() {
    let a = af_bench::ablations::run(true);
    assert_eq!(a.exp_bits.len(), 6);
    assert_eq!(a.bfp_block.len(), 3);
    assert!(a.rendered.contains("scale register bits"));
}
