//! End-to-end serving tests: a real `TcpListener` on an ephemeral port,
//! real concurrent connections, and the two properties the serving
//! stack exists to hold:
//!
//! 1. **Bit-identity** — every byte a client gets back through TCP +
//!    micro-batching is exactly what direct per-sample
//!    [`FrozenMlp::evaluate`] produces, at any batch mix and thread
//!    count.
//! 2. **Bounded overload** — a saturated variant sheds with an explicit
//!    `429` instead of queueing without bound, and successful responses
//!    under overload are still bit-exact.

use std::sync::Arc;
use std::time::Duration;

use adaptivfloat::FormatKind;
use af_models::{FrozenMlp, ModelFamily};
use af_serve::{Client, ClientError, Engine, EngineConfig, ModelRegistry, Server, VariantSpec};

fn registry() -> Arc<ModelRegistry> {
    let reg = ModelRegistry::new();
    reg.register(&VariantSpec::fp32(
        "transformer/fp32",
        ModelFamily::Transformer,
        40,
        &[24, 48, 12],
    ))
    .unwrap();
    reg.register(&VariantSpec::quantized(
        "transformer/adaptivfloat8",
        ModelFamily::Transformer,
        FormatKind::AdaptivFloat,
        8,
        40,
        &[24, 48, 12],
    ))
    .unwrap();
    reg.register(&VariantSpec::quantized(
        "resnet/posit6",
        ModelFamily::ResNet,
        FormatKind::Posit,
        6,
        41,
        &[24, 32, 8],
    ))
    .unwrap();
    // Same weights as transformer/adaptivfloat8, served through the
    // fused quantized-domain GEMM — answers must stay bit-identical.
    reg.register(
        &VariantSpec::quantized(
            "transformer/adaptivfloat8-fused",
            ModelFamily::Transformer,
            FormatKind::AdaptivFloat,
            8,
            40,
            &[24, 48, 12],
        )
        .fused(),
    )
    .unwrap();
    Arc::new(reg)
}

fn serve(cfg: EngineConfig) -> (Server, Arc<ModelRegistry>) {
    let reg = registry();
    let engine = Arc::new(Engine::start(Arc::clone(&reg), cfg));
    let server = Server::bind("127.0.0.1:0", engine).expect("bind ephemeral port");
    (server, reg)
}

#[test]
fn concurrent_tcp_requests_are_bit_identical_to_direct_evaluation() {
    let (server, reg) = serve(EngineConfig {
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        ..EngineConfig::default()
    });
    let addr = server.addr();
    let ids = [
        "transformer/fp32",
        "transformer/adaptivfloat8",
        "resnet/posit6",
        "transformer/adaptivfloat8-fused",
    ];
    let handles: Vec<_> = (0..12u64)
        .map(|t| {
            let id = ids[t as usize % ids.len()];
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let inputs = FrozenMlp::synth_inputs(500 + t, 8, 24);
                let mut answers = Vec::new();
                for r in 0..inputs.rows() {
                    let out = client.infer(id, inputs.row(r)).expect("infer");
                    answers.push((inputs.row(r).to_vec(), out));
                }
                (id, answers)
            })
        })
        .collect();
    for h in handles {
        let (id, answers) = h.join().expect("client thread");
        let model = &reg.get(id).expect("variant").model;
        for (input, served) in answers {
            let direct = model.evaluate(&input);
            let got: Vec<u32> = served.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "served bits must match direct evaluation ({id})");
        }
    }
    let snap = server.engine().stats().snapshot();
    assert_eq!(snap.completed, 12 * 8);
    assert_eq!(snap.shed, 0);
    assert!(snap.batches >= 1);
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_with_429_and_correct_responses_elsewhere() {
    // One request evaluated per 150 ms, two queue slots: a concurrent
    // burst of 10 must shed.
    let (server, reg) = serve(EngineConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_cap: 2,
        service_delay: Duration::from_millis(150),
        default_deadline: Duration::from_secs(10),
        ..EngineConfig::default()
    });
    let addr = server.addr();
    let handles: Vec<_> = (0..10u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let x = FrozenMlp::synth_inputs(700 + t, 1, 24);
                let input = x.row(0).to_vec();
                (input.clone(), client.infer("transformer/fp32", &input))
            })
        })
        .collect();
    let model = &reg.get("transformer/fp32").expect("variant").model;
    let (mut ok, mut shed) = (0, 0);
    for h in handles {
        let (input, result) = h.join().expect("client thread");
        match result {
            Ok(served) => {
                ok += 1;
                let direct = model.evaluate(&input);
                let got: Vec<u32> = served.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "overload must not corrupt served answers");
            }
            Err(ClientError::Http { status: 429, .. }) => shed += 1,
            Err(e) => panic!("unexpected outcome under overload: {e}"),
        }
    }
    assert!(ok >= 1, "some requests must still be served");
    assert!(shed >= 1, "a full bounded queue must shed with 429");
    assert_eq!(ok + shed, 10);
    let snap = server.engine().stats().snapshot();
    assert_eq!(snap.shed, shed as u64);
    assert_eq!(snap.completed, ok as u64);
    server.shutdown();
}

#[test]
fn health_stats_and_protocol_errors() {
    let (server, _reg) = serve(EngineConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");
    assert!(client.healthz().expect("healthz"));

    // Unknown variant → 404; wrong width → 400; tight deadline → 504.
    let err = client.infer("no/such", &[0.0; 24]).unwrap_err();
    assert!(
        matches!(err, ClientError::Http { status: 404, .. }),
        "{err}"
    );
    let err = client.infer("transformer/fp32", &[0.0; 3]).unwrap_err();
    assert!(
        matches!(err, ClientError::Http { status: 400, .. }),
        "{err}"
    );
    let x = FrozenMlp::synth_inputs(9, 1, 24);
    let _ = client
        .infer_with_deadline_ms("transformer/fp32", x.row(0), 2000)
        .expect("generous deadline");

    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"completed\":"));
    assert!(stats.contains("\"id\":\"transformer/adaptivfloat8\""));
    assert!(stats.contains("\"weight_format\":\"AdaptivFloat<8,3>\""));
    // The fused variant reports its packed-GEMM path (2 fused layers).
    assert!(stats.contains("\"id\":\"transformer/adaptivfloat8-fused\""));
    assert!(stats.contains("\"fused_gemm\":true,\"fused_layers\":2"));
    assert!(stats.contains("\"fused_gemm\":false"));
    server.shutdown();
}

#[test]
fn hot_swap_is_visible_to_new_requests_without_disrupting_service() {
    let (server, reg) = serve(EngineConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");
    let x = FrozenMlp::synth_inputs(11, 1, 24);
    let input = x.row(0).to_vec();
    let before = client
        .infer("transformer/fp32", &input)
        .expect("before swap");

    // Re-register the id with a different seed (new weights).
    reg.register(&VariantSpec::fp32(
        "transformer/fp32",
        ModelFamily::Transformer,
        99,
        &[24, 48, 12],
    ))
    .expect("hot swap");

    let after = client
        .infer("transformer/fp32", &input)
        .expect("after swap");
    assert_ne!(before, after, "new requests must see the swapped weights");
    let direct = reg.get("transformer/fp32").unwrap().model.evaluate(&input);
    let got: Vec<u32> = after.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);
    assert_eq!(reg.get("transformer/fp32").unwrap().generation, 1);
    server.shutdown();
}
