//! End-to-end integration: train a model, quantize it through the whole
//! stack (format → fake-quant op → model → task metric), and check the
//! paper's qualitative claims.

use adaptivfloat::FormatKind;
use af_models::model::retrain_quantized;
use af_models::{MiniResNet, QuantizableModel, Seq2Seq};
use af_nn::QuantSpec;

#[test]
fn resnet_ptq_8bit_is_nearly_lossless() {
    let mut model = MiniResNet::new(11);
    model.train_steps(80);
    let fp32 = model.evaluate(60);
    assert!(fp32 > 80.0, "FP32 baseline too weak: {fp32}");
    model
        .quantize_weights_ptq(QuantSpec::new(FormatKind::AdaptivFloat, 8))
        .expect("valid spec");
    let q8 = model.evaluate(60);
    assert!(q8 >= fp32 - 5.0, "8-bit PTQ dropped too far: {fp32} → {q8}");
}

#[test]
fn qar_recovers_what_ptq_loses() {
    // At 4 bits PTQ hurts; retraining with the straight-through estimator
    // recovers (the core mechanism behind the paper's Table 2 QAR rows).
    let mut model = MiniResNet::new(12);
    model.train_steps(80);
    let snapshot = model.snapshot();
    let spec = QuantSpec::new(FormatKind::AdaptivFloat, 4);
    model.quantize_weights_ptq(spec).expect("valid spec");
    let ptq = model.evaluate(60);
    model.restore(&snapshot);
    model.reset_optimizer();
    retrain_quantized(&mut model, spec, 30).expect("valid spec");
    let qar = model.evaluate(60);
    assert!(
        qar >= ptq - 1e-9,
        "QAR ({qar}) must not be worse than PTQ ({ptq})"
    );
    assert!(qar > 60.0, "4-bit QAR should be usable: {qar}");
}

#[test]
fn weight_and_activation_quantization_8bit_works() {
    let mut model = MiniResNet::new(13);
    model.train_steps(80);
    let fp32 = model.evaluate(60);
    let q = QuantSpec::new(FormatKind::AdaptivFloat, 8)
        .build()
        .expect("valid spec");
    model.set_weight_quantizer(Some(q.clone()));
    model.set_act_quantizer(Some(q));
    model.train_steps(10); // brief QAR with observers live
    let w8a8 = model.evaluate(60);
    assert!(
        w8a8 >= fp32 - 10.0,
        "W8/A8 dropped too far: {fp32} → {w8a8}"
    );
}

#[test]
fn seq2seq_survives_8bit_adaptivfloat() {
    let mut model = Seq2Seq::new(14);
    model.train_steps(900);
    let fp32 = model.evaluate(16);
    assert!(fp32 < 40.0, "FP32 WER too high: {fp32}");
    model
        .quantize_weights_ptq(QuantSpec::new(FormatKind::AdaptivFloat, 8))
        .expect("valid spec");
    let q8 = model.evaluate(16);
    assert!(q8 <= fp32 + 15.0, "8-bit PTQ WER blew up: {fp32} → {q8}");
}

#[test]
fn snapshots_are_faithful() {
    let mut model = MiniResNet::new(15);
    model.train_steps(5);
    let before = model.evaluate(40);
    let snapshot = model.snapshot();
    // Wreck the weights, then restore.
    model
        .quantize_weights_ptq(QuantSpec::new(FormatKind::Uniform, 4))
        .expect("valid spec");
    model.restore(&snapshot);
    let after = model.evaluate(40);
    assert_eq!(before, after, "restore must reproduce the exact metric");
}
