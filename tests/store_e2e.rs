//! Durable store, end to end: a serving registry journaled through the
//! write-ahead log survives an abrupt process death (simulated by
//! dropping every handle without any orderly shutdown or checkpoint)
//! and recovers to **bit-identical** serving:
//!
//! 1. **Warm restart** — protected and fused variants reopen from their
//!    containers with zero requantization (the LUT cache write-lock
//!    counter does not move during recovery) and answer the exact bits
//!    the pre-crash process served.
//! 2. **Generation monotonicity** — scrub rebuilds and hot swaps are
//!    WAL records, so generation counters and ECC history keep counting
//!    across restarts instead of resetting.
//! 3. **Torn tails** — a WAL cut mid-record drops the tail cleanly and
//!    keeps everything before it.
//! 4. **Typed refusal + rollback** — a corrupt container fails recovery
//!    with a typed error (never a panic, never wrong bits), and rolling
//!    back to the last checkpoint restores a servable store.
//!
//! The tests share the process-wide LUT cache counter, so they run
//! serialized behind one mutex.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use adaptivfloat::FormatKind;
use af_models::{FrozenMlp, ModelFamily};
use af_serve::{DurableOpen, DurableStore, Engine, EngineConfig, VariantSpec};
use af_store::{container_file_name, Store, SyncPolicy};

const IN_DIM: usize = 16;
const DIMS: [usize; 3] = [IN_DIM, 24, 6];
const SEED: u64 = 2020;

/// Serializes the tests: the zero-requantization assertion reads the
/// process-wide LUT cache write-lock counter, which concurrent
/// registrations in sibling tests would race.
fn lut_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("af-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn open(root: &Path) -> DurableOpen {
    DurableStore::open(root, SyncPolicy::EveryRecord, 0).expect("open durable store")
}

fn protected_spec(id: &str) -> VariantSpec {
    VariantSpec::quantized(
        id,
        ModelFamily::ResNet,
        FormatKind::AdaptivFloat,
        8,
        SEED,
        &DIMS,
    )
    .protected()
}

fn fused_spec(id: &str) -> VariantSpec {
    VariantSpec::quantized(
        id,
        ModelFamily::Transformer,
        FormatKind::AdaptivFloat,
        8,
        SEED ^ 1,
        &DIMS,
    )
    .fused()
}

#[test]
fn crash_recovery_is_bit_identical_with_zero_requantization() {
    let _guard = lut_guard();
    let root = tmp_root("crash");
    let inputs = FrozenMlp::synth_inputs(33, 4, IN_DIM);
    let ids = ["m/fp32", "m/protected", "m/fused"];

    // Pre-crash process: register one variant per serving mode and
    // record what each answers.
    let mut want: Vec<Vec<Vec<u32>>> = Vec::new();
    {
        let opened = open(&root);
        assert_eq!(opened.report.recovered_variants, 0, "fresh store");
        opened
            .registry
            .register(&VariantSpec::fp32(ids[0], ModelFamily::ResNet, SEED, &DIMS))
            .unwrap();
        opened.registry.register(&protected_spec(ids[1])).unwrap();
        opened.registry.register(&fused_spec(ids[2])).unwrap();
        for id in ids {
            let v = opened.registry.get(id).unwrap();
            want.push(
                (0..4)
                    .map(|r| bits(&v.model.evaluate(inputs.row(r))))
                    .collect(),
            );
        }
        // Simulated kill -9: drop everything — no checkpoint, no
        // shutdown. The WAL (EveryRecord sync) is all that survives.
    }

    // Warm restart: recovery must not quantize anything — every
    // codebook the restored plans reference is already in the
    // process-wide cache, so the write-lock counter cannot move.
    let locks_before = adaptivfloat::lut::write_lock_acquisitions();
    let opened = open(&root);
    assert_eq!(
        adaptivfloat::lut::write_lock_acquisitions(),
        locks_before,
        "recovery must not build plans or codebooks"
    );
    assert_eq!(opened.report.recovered_variants, 3);
    assert!(opened.report.recovery_us > 0);
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    assert_eq!(opened.registry.ids(), sorted);

    for (id, rows) in ids.iter().zip(&want) {
        let v = opened.registry.get(id).unwrap();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                &bits(&v.model.evaluate(inputs.row(r))),
                row,
                "{id} must answer pre-crash bits"
            );
        }
    }
    // Each serving mode recovered *as* that mode, not as plain FP32.
    let protected = opened.registry.get(ids[1]).unwrap();
    assert!(protected.model.format_name().ends_with("+secded"));
    assert!(protected.protected.is_some());
    let fused = opened.registry.get(ids[2]).unwrap();
    assert!(fused.model.fused_layers() > 0, "fused GEMM must come back");

    // The engine serves the recovered registry and reports the store.
    let engine = Engine::start(Arc::clone(&opened.registry), EngineConfig::default());
    engine.attach_store(Arc::clone(&opened.store));
    let got = engine.infer(ids[1], inputs.row(0).to_vec()).unwrap();
    assert_eq!(bits(&got), want[1][0]);
    let stats = engine.stats_json();
    assert!(stats.contains("\"store\":{\"checkpoint_version\":0"));
    assert!(stats.contains("\"recovered_variants\":3"));
    assert!(stats.contains("\"journal_errors\":0"));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn generation_and_ecc_history_survive_restarts_monotonically() {
    let _guard = lut_guard();
    let root = tmp_root("gen");
    let id = "m/protected";
    let inputs = FrozenMlp::synth_inputs(7, 1, IN_DIM);

    let baseline = {
        let opened = open(&root);
        let v = opened.registry.register(&protected_spec(id)).unwrap();
        assert_eq!(v.generation, 0);
        let baseline = bits(&v.model.evaluate(inputs.row(0)));
        // A double-bit upset forces a rebuild from the master and a
        // generation-bumping hot swap — both journaled.
        {
            let mut store = v.protected.as_ref().unwrap().lock().unwrap();
            store.flip_bit(0, 2, 7);
            store.flip_bit(0, 2, 33);
        }
        let outcome = opened.registry.scrub_variant(id).unwrap();
        assert!(outcome.rebuilt);
        assert_eq!(outcome.generation, 1);
        baseline
    };

    // Restart 1: the generation and the ECC history both survived.
    let gen_after_first = {
        let opened = open(&root);
        let v = opened.registry.get(id).unwrap();
        assert_eq!(v.generation, 1, "rebuild generation must survive restart");
        assert_eq!(bits(&v.model.evaluate(inputs.row(0))), baseline);
        let store = v.protected.as_ref().unwrap().lock().unwrap();
        assert_eq!(store.rebuilds(), 1);
        assert_eq!(store.ecc_stats().detected_uncorrectable, 1);
        drop(store);
        // A re-register on the recovered registry keeps counting from
        // the recovered generation, not from zero.
        let swapped = opened.registry.register(&protected_spec(id)).unwrap();
        assert_eq!(swapped.generation, 2);
        swapped.generation
    };

    // Restart 2: still monotone.
    let opened = open(&root);
    let v = opened.registry.get(id).unwrap();
    assert_eq!(v.generation, gen_after_first);
    assert_eq!(bits(&v.model.evaluate(inputs.row(0))), baseline);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_wal_tail_is_dropped_and_everything_before_it_recovers() {
    let _guard = lut_guard();
    let root = tmp_root("torn");
    let inputs = FrozenMlp::synth_inputs(11, 1, IN_DIM);

    let baseline = {
        let opened = open(&root);
        let v = opened.registry.register(&protected_spec("m/a")).unwrap();
        opened.registry.register(&fused_spec("m/b")).unwrap();
        bits(&v.model.evaluate(inputs.row(0)))
    };

    // A crash mid-append leaves a torn record at the tail: fake one
    // with a partial header (7 of the 8 header bytes).
    {
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("wal.log"))
            .unwrap();
        wal.write_all(&[0xFF; 7]).unwrap();
    }

    let opened = open(&root);
    assert_eq!(opened.report.torn_tail_bytes_dropped, 7);
    assert_eq!(opened.report.recovered_variants, 2);
    assert_eq!(opened.registry.ids(), ["m/a", "m/b"]);
    let v = opened.registry.get("m/a").unwrap();
    assert_eq!(bits(&v.model.evaluate(inputs.row(0))), baseline);
    // The truncated log keeps accepting appends: mutate and restart
    // once more.
    assert!(opened.registry.unregister("m/b"));
    drop(opened);
    let opened = open(&root);
    assert_eq!(opened.registry.ids(), ["m/a"]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_container_fails_typed_and_rollback_restores_the_checkpoint() {
    let _guard = lut_guard();
    let root = tmp_root("rollback");
    let inputs = FrozenMlp::synth_inputs(19, 1, IN_DIM);

    let baseline = {
        let opened = open(&root);
        let v = opened.registry.register(&protected_spec("m/a")).unwrap();
        let baseline = bits(&v.model.evaluate(inputs.row(0)));
        // Fold m/a into checkpoint 1, then register m/b on top (live
        // container + WAL only).
        assert_eq!(opened.store.checkpoint().unwrap(), 1);
        opened.registry.register(&fused_spec("m/b")).unwrap();
        baseline
    };

    // Smash m/b's live container.
    let container = root.join("variants").join(container_file_name("m/b"));
    let mut bytes = std::fs::read(&container).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 32] {
        *b ^= 0xA5;
    }
    std::fs::write(&container, &bytes).unwrap();

    // Recovery refuses the bad store with a typed error — no panic, no
    // silently-wrong weights.
    let err = DurableStore::open(&root, SyncPolicy::EveryRecord, 0)
        .expect_err("corrupt container must fail recovery");
    assert!(
        matches!(err.kind(), "corrupt" | "malformed" | "truncated"),
        "unexpected error class {}: {err}",
        err.kind()
    );

    // The operator rolls back to the checkpoint; m/b is gone, m/a
    // serves its exact old bits.
    Store::rollback(&root, 1).unwrap();
    let opened = open(&root);
    assert_eq!(opened.registry.ids(), ["m/a"]);
    let v = opened.registry.get("m/a").unwrap();
    assert_eq!(bits(&v.model.evaluate(inputs.row(0))), baseline);
    let _ = std::fs::remove_dir_all(&root);
}
