//! Cross-crate consistency between the quantization algorithms and the
//! hardware model.

use adaptivfloat::AdaptivFloat;
use af_hw::arith::hfint_dot;
use af_hw::{Accelerator, CostParams, LstmWorkload, PeConfig, PeKind, PeModel};
use af_nn::{Layer, Linear, Tape};
use af_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fake-quantized `af-nn` Linear layer and the bit-accurate HFINT
/// datapath must compute the same numbers: what the training stack
/// simulates is exactly what the hardware would produce.
#[test]
fn nn_fake_quant_matches_hfint_datapath() {
    let mut rng = StdRng::seed_from_u64(21);
    let fmt = AdaptivFloat::new(8, 3).unwrap();
    let mut layer = Linear::new(&mut rng, "fc", 64, 1);
    layer.b.value = Tensor::zeros(&[1]);
    let quantizer: af_nn::Quantizer = std::sync::Arc::new(fmt);
    layer.set_weight_quantizer(Some(quantizer.clone()));
    let x_data: Vec<f32> = (0..64).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1).collect();
    // The nn stack: fake-quant weights AND input, FP32 matmul.
    let mut tape = Tape::new();
    let x = tape.input(Tensor::from_vec(x_data.clone(), &[1, 64]));
    let xq = tape.fake_quant(x, &quantizer);
    let y = layer.forward(&mut tape, xq);
    let nn_result = tape.value(y).data()[0] as f64;
    // The hardware: encode both operands, integer MAC.
    let w_data = layer.w.value.data().to_vec();
    let wp = fmt.params_for(&w_data);
    let ap = fmt.params_for(&x_data);
    let wc: Vec<u32> = w_data.iter().map(|&v| fmt.encode_with(&wp, v)).collect();
    let ac: Vec<u32> = x_data.iter().map(|&v| fmt.encode_with(&ap, v)).collect();
    let (_, hw_result) = hfint_dot(&fmt, &wp, &ap, &wc, &ac);
    // FP32 matmul of quantized values vs exact integer accumulation:
    // agreement to f32 accumulation error.
    assert!(
        (nn_result - hw_result).abs() < 1e-4,
        "nn {nn_result} vs hw {hw_result}"
    );
}

#[test]
fn fig7_and_table4_tell_the_same_story() {
    // The PE-level energy advantage must survive the system rollup.
    let params = CostParams::finfet16();
    let pe_ratio = PeModel::new(PeKind::HfInt, PeConfig::paper(8, 16), &params).energy_per_op_fj()
        / PeModel::new(PeKind::Int, PeConfig::paper(8, 16), &params).energy_per_op_fj();
    let w = LstmWorkload::paper();
    let int = Accelerator::paper_system(PeKind::Int, 8, 16).run(&w);
    let hf = Accelerator::paper_system(PeKind::HfInt, 8, 16).run(&w);
    let sys_ratio = hf.power_mw / int.power_mw;
    assert!(pe_ratio < 1.0 && sys_ratio < 1.0);
    // System ratio is diluted toward 1 by shared SRAM/bus/leakage power.
    assert!(
        sys_ratio > pe_ratio - 0.02,
        "system {sys_ratio} vs PE {pe_ratio}"
    );
}

#[test]
fn accumulator_width_drives_energy_ordering() {
    // HFINT4/22 vs INT4/16/24 and HFINT8/30 vs INT8/24/40: widths from
    // the format geometry must match what the PE model reports.
    let params = CostParams::finfet16();
    for (n, int_a, hf_a) in [(4u32, 16u32, 22u32), (8, 24, 30)] {
        let int = PeModel::new(PeKind::Int, PeConfig::paper(n, 16), &params);
        let hf = PeModel::new(PeKind::HfInt, PeConfig::paper(n, 16), &params);
        assert_eq!(int.accumulator_bits(), int_a);
        assert_eq!(hf.accumulator_bits(), hf_a);
    }
}

#[test]
fn quantized_weights_fit_weight_buffer() {
    // The paper's buffer sizing: all four gate matrices at 8 bits must
    // fit the 4 × 256 KB weight buffers.
    let acc = Accelerator::paper_system(PeKind::HfInt, 8, 16);
    let w = LstmWorkload::paper();
    let bytes_needed = w.weight_count() as usize * 8 / 8;
    assert!(bytes_needed <= acc.weight_buffer_bytes() * acc.num_pes());
}

#[test]
fn exp_bias_register_width_is_4_bits() {
    // The paper allocates 4-bit registers for the exponent biases. The
    // bias is "a small, typically negative, integer": for 8-bit
    // AdaptivFloat and layer maxima from 2^-8 to 2^6, bias ∈ [−15, 0] —
    // exactly 16 values, i.e. a 4-bit magnitude register.
    let fmt = AdaptivFloat::new(8, 3).unwrap();
    for max_abs in [0.004f32, 0.05, 0.5, 2.4, 20.4, 100.0] {
        let params = fmt.params_for(&[max_abs]);
        assert!(
            (-15..=0).contains(&params.exp_bias),
            "bias {} for max {}",
            params.exp_bias,
            max_abs
        );
    }
}
