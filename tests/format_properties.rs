//! Property-based tests of the number-format invariants, across crates.

use adaptivfloat::{
    AdaptivFloat, BlockFloat, FixedPoint, FormatKind, IeeeLikeFloat, NumberFormat, Posit, Uniform,
};
use proptest::prelude::*;

fn finite_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0f32..1000.0, 1..128)
}

proptest! {
    /// Quantization is idempotent for every format at every paper width.
    #[test]
    fn idempotent_quantization(data in finite_vec(), kind_idx in 0usize..5, bits in 4u32..=8) {
        let kind = FormatKind::ALL[kind_idx];
        let fmt = kind.build(bits).expect("valid");
        let q1 = fmt.quantize_slice(&data);
        let q2 = fmt.quantize_slice(&q1);
        prop_assert_eq!(q1, q2, "{} at {} bits", kind, bits);
    }

    /// Adaptive formats never produce values beyond max|data| by more
    /// than their top-grid-point overshoot (the max is exactly covered).
    #[test]
    fn adaptive_range_covers_data(data in finite_vec(), bits in 4u32..=8) {
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for kind in [FormatKind::AdaptivFloat, FormatKind::Uniform, FormatKind::Bfp] {
            let fmt = kind.build(bits).expect("valid");
            let q = fmt.quantize_slice(&data);
            for &v in &q {
                // AdaptivFloat's value_max is ≥ 2^exp_max ≥ max/2 and can
                // exceed max by < 2×; uniform/BFP never exceed max (+1 step).
                prop_assert!(v.abs() <= max_abs * 2.0 + 1e-6,
                    "{} {}b produced {} for max {}", kind, bits, v, max_abs);
            }
        }
    }

    /// The quantization error of any format is bounded by the coarsest
    /// possible step: max|data| (everything collapsing to 0 or ±max).
    #[test]
    fn error_bounded_by_max(data in finite_vec(), kind_idx in 0usize..5, bits in 4u32..=8) {
        let kind = FormatKind::ALL[kind_idx];
        let fmt = kind.build(bits).expect("valid");
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let q = fmt.quantize_slice(&data);
        for (&orig, &quant) in data.iter().zip(&q) {
            // Posit saturates at minpos (no underflow) but minpos is tiny;
            // the universal bound still holds with a small slack.
            prop_assert!((orig - quant).abs() <= max_abs + 1.0,
                "{} {}b: {} -> {}", kind, bits, orig, quant);
        }
    }

    /// Quantizing an already-representable AdaptivFloat value is exact,
    /// and the packed codec round-trips.
    #[test]
    fn adaptivfloat_codec_roundtrip(data in finite_vec(), e in 2u32..=4) {
        let fmt = AdaptivFloat::new(8, e).expect("valid");
        let qt = fmt.quantize_tensor(&data);
        let direct = fmt.quantize_slice(&data);
        prop_assert_eq!(qt.dequantize(), direct);
    }

    /// Sign symmetry: q(−x) == −q(x) for symmetric formats under fixed
    /// parameters.
    #[test]
    fn sign_symmetry(data in finite_vec()) {
        let fmt = AdaptivFloat::new(8, 3).expect("valid");
        let params = fmt.params_for(&data);
        for &v in &data {
            prop_assert_eq!(fmt.quantize_with(&params, v),
                            -fmt.quantize_with(&params, -v));
        }
    }

    /// More bits never increase AdaptivFloat's per-element error (same
    /// exponent field, growing mantissa).
    #[test]
    fn monotone_in_mantissa_bits(data in finite_vec()) {
        let coarse = AdaptivFloat::new(6, 3).expect("valid");
        let fine = AdaptivFloat::new(8, 3).expect("valid");
        let pc = coarse.params_for(&data);
        let pf = fine.params_for(&data);
        for &v in &data {
            let ec = (v - coarse.quantize_with(&pc, v)).abs();
            let ef = (v - fine.quantize_with(&pf, v)).abs();
            prop_assert!(ef <= ec + 1e-6, "v={v}: fine {ef} coarse {ec}");
        }
    }

    /// Posit codes round-trip through quantize for every width/es pair.
    #[test]
    fn posit_fixed_points(n in 4u32..=10, es in 0u32..=2) {
        let p = Posit::new(n, es).expect("valid");
        for code in 0..(1u32 << n) {
            if code == 1 << (n - 1) { continue; } // NaR
            let v = p.decode(code);
            prop_assert_eq!(p.quantize_value(v), v);
        }
    }

    /// IEEE-like float decode∘encode is identity on representable values.
    #[test]
    fn ieee_like_fixed_points(n in 4u32..=10, e_off in 0u32..=2) {
        let e = 3 + e_off;
        prop_assume!(e < n);
        let f = IeeeLikeFloat::new(n, e).expect("valid");
        for code in 0..(1u32 << n) {
            let v = f.decode(code);
            prop_assert_eq!(f.quantize_value(v), v);
        }
    }

    /// Block floating-point: the largest-magnitude element survives with
    /// bounded relative error (it defines the shared exponent).
    #[test]
    fn bfp_preserves_max(data in prop::collection::vec(-100.0f32..100.0, 2..64), bits in 6u32..=10) {
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assume!(max_abs > 1e-3);
        let fmt = BlockFloat::new(bits).expect("valid");
        let q = fmt.quantize_slice(&data);
        let idx = data.iter().position(|v| v.abs() == max_abs).expect("exists");
        let rel = (data[idx] - q[idx]).abs() / max_abs;
        // Grid step at the top binade is 2^(E−n+3) ≤ max·2^(3−n)·2.
        prop_assert!(rel <= (3.0f32 - bits as f32).exp2() * 2.0, "rel {rel}");
    }

    /// Fixed-point and uniform agree on grid-aligned values.
    #[test]
    fn fixed_point_grid(k in -100i32..100) {
        let fmt = FixedPoint::new(8, 2).expect("valid");
        let v = k as f32 * 0.03125;
        if v.abs() <= fmt.value_max() as f32 {
            prop_assert_eq!(fmt.quantize_value(v), v);
        }
    }

    /// Uniform's integer levels stay within the signed range.
    #[test]
    fn uniform_levels_in_range(data in finite_vec(), bits in 4u32..=8) {
        let fmt = Uniform::new(bits).expect("valid");
        let (_, levels) = fmt.quantize_levels(&data);
        let q_max = fmt.q_max();
        for l in levels {
            prop_assert!(l.abs() <= q_max);
        }
    }
}
