//! Workspace-level acceptance tests for the fault-injection subsystem:
//! the two contracts the whole stack (core codecs → resilience campaigns
//! → model evaluation) must uphold together.
//!
//! 1. A campaign is a pure function of its seed — the fault map and
//!    every reported metric are bit-identical at any worker count.
//! 2. A zero-fault campaign is a no-op: running the full
//!    sample-inject-decode machinery at rate 0 is bit-identical to the
//!    uninstrumented encode/decode path.

use adaptivfloat::{DecodePolicy, FormatKind};
use af_models::{evaluate_with_weight_transform, MiniResNet, QuantizableModel};
use af_resilience::{
    inject_packed, run_weight_campaign, CampaignConfig, FaultKind, FaultSpec, StorageCodec,
};

fn trained_model() -> MiniResNet {
    let mut m = MiniResNet::new(7);
    m.train_steps(40);
    m
}

fn weight_layers(m: &mut MiniResNet) -> Vec<Vec<f32>> {
    m.weight_layers().into_iter().map(|(_, w)| w).collect()
}

#[test]
fn same_seed_is_bit_identical_at_one_and_eight_threads() {
    let layers = weight_layers(&mut trained_model());
    // The fault map itself is a pure function of (seed, element).
    let spec = FaultSpec {
        kind: FaultKind::MultiBit { flips: 2 },
        rate: 0.01,
        seed: 99,
    };
    assert_eq!(spec.sample(10_000, 8), spec.sample(10_000, 8));
    // And so is every campaign metric, regardless of worker count.
    for kind in FormatKind::ALL {
        let mut cfg = CampaignConfig::single_bit(5e-3, 2024);
        cfg.threads = Some(1);
        let one = run_weight_campaign(kind, 8, &layers, &cfg).unwrap();
        cfg.threads = Some(8);
        let eight = run_weight_campaign(kind, 8, &layers, &cfg).unwrap();
        assert_eq!(one, eight, "{kind}: thread count leaked into metrics");
        assert_eq!(one.clean_rms.to_bits(), eight.clean_rms.to_bits());
        assert_eq!(one.faulty_rms.to_bits(), eight.faulty_rms.to_bits());
    }
}

#[test]
fn zero_fault_injection_leaves_stored_words_untouched() {
    let layers = weight_layers(&mut trained_model());
    for kind in FormatKind::ALL {
        let codec = StorageCodec::fit(kind, 8, &layers[0]).unwrap();
        let clean = codec.encode_slice(&layers[0]);
        let mut struck = clean.clone();
        let map = FaultSpec::single_bit(0.0, 1).sample(layers[0].len(), 8);
        assert_eq!(inject_packed(&mut struck, &map), 0);
        assert_eq!(clean, struck, "{kind}: zero-rate injection mutated storage");
    }
}

#[test]
fn zero_fault_campaign_evaluates_bit_identically_to_uninstrumented() {
    let mut model = trained_model();
    let mut run = |inject: bool| {
        evaluate_with_weight_transform(&mut model, 20, |layer, w| {
            let codec = StorageCodec::fit(FormatKind::AdaptivFloat, 8, w).unwrap();
            let mut packed = codec.encode_slice(w);
            if inject {
                // The full campaign machinery, at rate 0.
                let map = FaultSpec::single_bit(0.0, layer as u64).sample(w.len(), 8);
                assert_eq!(inject_packed(&mut packed, &map), 0);
            }
            let (vals, stats) = codec.decode_slice(&packed, DecodePolicy::Harden);
            assert_eq!(stats.repaired(), 0);
            w.copy_from_slice(&vals);
        })
    };
    let uninstrumented = run(false);
    let zero_fault = run(true);
    assert_eq!(
        uninstrumented.to_bits(),
        zero_fault.to_bits(),
        "zero-fault campaign must be a bit-identical no-op"
    );
}
